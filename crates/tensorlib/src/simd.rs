//! Runtime-dispatched SIMD kernel paths for the hot conversion loops.
//!
//! The paper's host-side loops (optimizer update, Top-K filtering, FP16
//! working-copy refresh) must keep up with device bandwidth, and deployment
//! targets vary wildly in vector width (the SG2042/SG2044 characterizations
//! in PAPERS.md). This module provides the dispatch layer the whole
//! workspace shares:
//!
//! * [`KernelPath`] — which implementation tier runs: `scalar` (the portable
//!   reference loops), `sse2` (x86-64 baseline, 4-wide) or `avx2` (8-wide).
//! * [`KernelPath::active`] — the tier picked once per process via
//!   `is_x86_feature_detected!`, overridable with the
//!   `SMART_INFINITY_KERNEL_PATH` environment variable (useful for A/B
//!   benchmarking and for exercising the narrow paths on a wide machine).
//! * The bulk binary16 conversion kernels behind
//!   [`f16::from_f32_slice_into`](crate::f16::from_f32_slice_into) and
//!   friends.
//!
//! **Every vector path is bit-identical to the scalar reference** — including
//! round-to-nearest-even ties, subnormals, signed zeros, saturation to
//! infinity and NaN canonicalisation (the scalar converter canonicalises NaN
//! payloads, which is exactly why the hardware F16C instructions are *not*
//! used: `vcvtps2ph` preserves payload bits and would diverge). The
//! exhaustive suites in this module and in `half.rs` assert equality over
//! all 65536 binary16 bit patterns and over adversarial f32 classes.
//!
//! This is the only module in the crate allowed to use `unsafe` (for
//! `std::arch` intrinsics); the crate root remains `deny(unsafe_code)`.
#![allow(unsafe_code)]

use crate::half::{f16, f16_to_f32_table};
use serde::{de, Deserialize, Serialize, Value};
use std::fmt;
use std::sync::OnceLock;

/// Environment variable that forces a kernel path (`scalar`, `sse2` or
/// `avx2`). An unknown or unavailable value falls back to detection rather
/// than aborting, so a stale setting can never break training.
pub const KERNEL_PATH_ENV: &str = "SMART_INFINITY_KERNEL_PATH";

/// Which SIMD implementation tier a kernel runs on.
///
/// Ordered from narrowest to widest; [`KernelPath::detect`] picks the widest
/// available tier at runtime, so binaries built without `-C target-cpu`
/// still use AVX2 where the CPU has it and fall back cleanly where it
/// doesn't. All tiers produce bit-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub enum KernelPath {
    /// Portable scalar reference loops; always available.
    #[default]
    Scalar,
    /// 4-wide `std::arch` x86-64 SSE2 intrinsics.
    Sse2,
    /// 8-wide `std::arch` x86-64 AVX2 intrinsics.
    Avx2,
}

impl KernelPath {
    /// All paths, narrowest first.
    pub const ALL: [KernelPath; 3] = [KernelPath::Scalar, KernelPath::Sse2, KernelPath::Avx2];

    /// The lowercase wire name (`"scalar"`, `"sse2"`, `"avx2"`) used in
    /// `StepReport`, the perf snapshot schema and the env override.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Sse2 => "sse2",
            KernelPath::Avx2 => "avx2",
        }
    }

    /// Parses a wire name (case-insensitive). Returns `None` for unknown
    /// names.
    pub fn parse(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelPath::Scalar),
            "sse2" => Some(KernelPath::Sse2),
            "avx2" => Some(KernelPath::Avx2),
            _ => None,
        }
    }

    /// Whether this path can run on the current CPU (checked at runtime via
    /// `is_x86_feature_detected!`; non-x86-64 targets only have
    /// [`KernelPath::Scalar`]).
    pub fn is_available(self) -> bool {
        match self {
            KernelPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelPath::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            KernelPath::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every path available on this CPU, narrowest first (always contains at
    /// least [`KernelPath::Scalar`]). Equivalence suites iterate this to
    /// compare every runnable tier against the scalar reference.
    pub fn available() -> Vec<KernelPath> {
        Self::ALL.into_iter().filter(|p| p.is_available()).collect()
    }

    /// The widest available path, ignoring the env override.
    pub fn detect() -> Self {
        *Self::available().last().expect("scalar is always available")
    }

    /// The path every auto-dispatching kernel uses, decided once per process:
    /// [`KERNEL_PATH_ENV`] if set to an available path, else
    /// [`KernelPath::detect`].
    pub fn active() -> Self {
        static ACTIVE: OnceLock<KernelPath> = OnceLock::new();
        *ACTIVE.get_or_init(|| match std::env::var(KERNEL_PATH_ENV) {
            Ok(name) => match Self::parse(&name) {
                Some(path) if path.is_available() => path,
                _ => Self::detect(),
            },
            Err(_) => Self::detect(),
        })
    }
}

impl fmt::Display for KernelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for KernelPath {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl Deserialize for KernelPath {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) => KernelPath::parse(s).ok_or_else(|| {
                de::Error::custom(format!(
                    "KernelPath: unknown kernel path `{s}` (expected scalar, sse2 or avx2)"
                ))
            }),
            other => Err(de::Error::expected("a string", other, "KernelPath")),
        }
    }
}

// ---------------------------------------------------------------------------
// Bulk binary16 conversion drivers. Each takes an explicit path (asserted
// available by the public `_with` wrappers in `half.rs`) and falls back to
// the scalar reference loop off x86-64.
// ---------------------------------------------------------------------------

/// Bulk `f32 → f16`, bit-identical to per-element [`f16::from_f32`].
pub(crate) fn f32_to_f16_bulk(path: KernelPath, src: &[f32], dst: &mut [f16]) {
    assert_eq!(src.len(), dst.len(), "conversion length mismatch");
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is checked by the caller (`is_available`).
        KernelPath::Avx2 => return unsafe { avx2::f32_to_f16(src, dst.as_mut_ptr().cast()) },
        KernelPath::Sse2 => return unsafe { sse2::f32_to_f16(src, dst.as_mut_ptr().cast()) },
        KernelPath::Scalar => {}
    }
    let _ = path;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f16::from_f32(s);
    }
}

/// Bulk `f16 → f32`, bit-identical to per-element [`f16::to_f32`].
pub(crate) fn f16_to_f32_bulk(path: KernelPath, src: &[f16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "conversion length mismatch");
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is checked by the caller; `f16` is
        // `repr(transparent)` over `u16`, so the byte view is its LE wire
        // form on x86-64.
        KernelPath::Avx2 => return unsafe { avx2::f16_to_f32(src.as_ptr().cast(), dst) },
        KernelPath::Sse2 => return unsafe { sse2::f16_to_f32(src.as_ptr().cast(), dst) },
        KernelPath::Scalar => {}
    }
    let _ = path;
    let table = f16_to_f32_table();
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = table[s.to_bits() as usize];
    }
}

/// Bulk FP16 round trip (`f32 → f16 → f32`) without materialising the
/// intermediate halves; bit-identical to
/// `f16::from_f32(x).to_f32()` per element.
pub(crate) fn f16_roundtrip_bulk(path: KernelPath, src: &[f32], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "conversion length mismatch");
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is checked by the caller.
        KernelPath::Avx2 => return unsafe { avx2::f16_roundtrip(src, dst) },
        KernelPath::Sse2 => return unsafe { sse2::f16_roundtrip(src, dst) },
        KernelPath::Scalar => {}
    }
    let _ = path;
    let table = f16_to_f32_table();
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = table[f16::from_f32(s).to_bits() as usize];
    }
}

/// Bulk LE-byte decode (`2·n` bytes → `n` floats), bit-identical to
/// `f16::from_bits(u16::from_le_bytes(..)).to_f32()` per element.
///
/// # Panics
///
/// Panics if `bytes.len() != 2 * dst.len()`.
pub(crate) fn f16_bytes_to_f32_bulk(path: KernelPath, bytes: &[u8], dst: &mut [f32]) {
    assert_eq!(bytes.len(), 2 * dst.len(), "byte length mismatch");
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is checked by the caller; loads are unaligned.
        KernelPath::Avx2 => return unsafe { avx2::f16_to_f32(bytes.as_ptr(), dst) },
        KernelPath::Sse2 => return unsafe { sse2::f16_to_f32(bytes.as_ptr(), dst) },
        KernelPath::Scalar => {}
    }
    let _ = path;
    let table = f16_to_f32_table();
    for (d, pair) in dst.iter_mut().zip(bytes.chunks_exact(2)) {
        *d = table[u16::from_le_bytes([pair[0], pair[1]]) as usize];
    }
}

/// Bulk LE-byte encode (`n` floats → `2·n` bytes), bit-identical to
/// `f16::from_f32(x).to_bits().to_le_bytes()` per element.
///
/// # Panics
///
/// Panics if `dst.len() != 2 * src.len()`.
pub(crate) fn f32_to_f16_bytes_bulk(path: KernelPath, src: &[f32], dst: &mut [u8]) {
    assert_eq!(dst.len(), 2 * src.len(), "byte length mismatch");
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is checked by the caller; stores are unaligned.
        KernelPath::Avx2 => return unsafe { avx2::f32_to_f16(src, dst.as_mut_ptr()) },
        KernelPath::Sse2 => return unsafe { sse2::f32_to_f16(src, dst.as_mut_ptr()) },
        KernelPath::Scalar => {}
    }
    let _ = path;
    for (pair, &s) in dst.chunks_exact_mut(2).zip(src) {
        pair.copy_from_slice(&f16::from_f32(s).to_bits().to_le_bytes());
    }
}

/// 8-wide AVX2 conversions. The arithmetic mirrors the scalar converters
/// case by case; see the comments on each step for the equivalence argument.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use crate::half::f16;
    use std::arch::x86_64::*;

    /// Round-to-nearest-even on the dropped low 13 bits (the f32→f16
    /// mantissa narrowing), mirroring `round_shift_right(m, 13)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rtne_shift13(mant: __m256i) -> __m256i {
        let truncated = _mm256_srli_epi32::<13>(mant);
        let dropped = _mm256_and_si256(mant, _mm256_set1_epi32(0x1FFF));
        let halfway = _mm256_set1_epi32(0x1000);
        // All quantities are < 2^13, so signed 32-bit compares are exact.
        let above = _mm256_cmpgt_epi32(dropped, halfway);
        let odd = _mm256_cmpeq_epi32(
            _mm256_and_si256(truncated, _mm256_set1_epi32(1)),
            _mm256_set1_epi32(1),
        );
        let tie = _mm256_and_si256(_mm256_cmpeq_epi32(dropped, halfway), odd);
        // A set mask is -1 per lane; subtracting it adds the rounding unit.
        _mm256_sub_epi32(truncated, _mm256_or_si256(above, tie))
    }

    /// Round-to-nearest-even with a per-lane shift in `[14, 24]` (the
    /// subnormal narrowing), mirroring `round_shift_right(m, shift)`.
    /// Lanes whose shift is outside that range produce garbage that the
    /// caller blends away (variable shifts with counts ≥ 32 yield 0, so
    /// there is no UB either way).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn rtne_shift_var(value: __m256i, shift: __m256i) -> __m256i {
        let one = _mm256_set1_epi32(1);
        let truncated = _mm256_srlv_epi32(value, shift);
        let low_mask = _mm256_sub_epi32(_mm256_sllv_epi32(one, shift), one);
        let dropped = _mm256_and_si256(value, low_mask);
        let halfway = _mm256_sllv_epi32(one, _mm256_sub_epi32(shift, one));
        // Values are < 2^24, so signed compares are exact.
        let above = _mm256_cmpgt_epi32(dropped, halfway);
        let odd = _mm256_cmpeq_epi32(_mm256_and_si256(truncated, one), one);
        let tie = _mm256_and_si256(_mm256_cmpeq_epi32(dropped, halfway), odd);
        _mm256_sub_epi32(truncated, _mm256_or_si256(above, tie))
    }

    /// Narrows eight u32 lanes (each ≤ 0xFFFF) to eight packed u16s.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pack_u32_to_u16(v: __m256i) -> __m128i {
        // packus saturates per 128-bit lane; our values fit, so this is a
        // pure narrowing. The permute stitches the two lane-local halves.
        let packed = _mm256_packus_epi32(v, v);
        let ordered = _mm256_permute4x64_epi64::<0b00_00_10_00>(packed);
        _mm256_castsi256_si128(ordered)
    }

    /// Eight `f32 → f16` conversions, bit-identical to `f16::from_f32`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn from_f32x8(v: __m256) -> __m128i {
        let bits = _mm256_castps_si256(v);
        let sign = _mm256_and_si256(_mm256_srli_epi32::<16>(bits), _mm256_set1_epi32(0x8000));
        let exp = _mm256_and_si256(_mm256_srli_epi32::<23>(bits), _mm256_set1_epi32(0xFF));
        let mant = _mm256_and_si256(bits, _mm256_set1_epi32(0x007F_FFFF));

        // Normal range (f32 exponent 113..=142): `(half_exp << 10) + rounded`.
        // The *add* is what makes the scalar mantissa-overflow branch
        // implicit: a round-up past 10 bits carries into the exponent, and
        // half_exp 30 carrying to 31 lands exactly on the infinity pattern.
        let half_exp = _mm256_sub_epi32(exp, _mm256_set1_epi32(112));
        let normal = _mm256_add_epi32(_mm256_slli_epi32::<10>(half_exp), rtne_shift13(mant));

        // Subnormal range (f32 exponent 102..=112): shift the mantissa with
        // its implicit leading one right by `126 - exp` ∈ [14, 24]. A round
        // up to 0x400 lands exactly on the smallest normal, as in scalar.
        let full = _mm256_or_si256(mant, _mm256_set1_epi32(0x0080_0000));
        let shift = _mm256_sub_epi32(_mm256_set1_epi32(126), exp);
        let subnormal = rtne_shift_var(full, shift);

        // Exponent 255: infinity keeps 0x7C00, any NaN canonicalises to
        // 0x7E00 (payload dropped, exactly like the scalar converter).
        let mant_zero = _mm256_cmpeq_epi32(mant, _mm256_setzero_si256());
        let special =
            _mm256_blendv_epi8(_mm256_set1_epi32(0x7E00), _mm256_set1_epi32(0x7C00), mant_zero);

        // Each threshold mask is a superset of the next, so layering the
        // blends widest-class-first resolves every lane to its own case.
        let is_subnormal = _mm256_cmpgt_epi32(exp, _mm256_set1_epi32(101));
        let is_normal = _mm256_cmpgt_epi32(exp, _mm256_set1_epi32(112));
        let is_overflow = _mm256_cmpgt_epi32(exp, _mm256_set1_epi32(142));
        let is_special = _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0xFF));
        let mut res = _mm256_setzero_si256(); // underflow → signed zero
        res = _mm256_blendv_epi8(res, subnormal, is_subnormal);
        res = _mm256_blendv_epi8(res, normal, is_normal);
        res = _mm256_blendv_epi8(res, _mm256_set1_epi32(0x7C00), is_overflow);
        res = _mm256_blendv_epi8(res, special, is_special);
        pack_u32_to_u16(_mm256_or_si256(res, sign))
    }

    /// Eight `f16 → f32` conversions, bit-identical to `f16::to_f32`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn to_f32x8(h: __m128i) -> __m256 {
        let bits = _mm256_cvtepu16_epi32(h);
        let sign = _mm256_slli_epi32::<16>(_mm256_and_si256(bits, _mm256_set1_epi32(0x8000)));
        let exp = _mm256_and_si256(_mm256_srli_epi32::<10>(bits), _mm256_set1_epi32(0x1F));
        let mant = _mm256_and_si256(bits, _mm256_set1_epi32(0x03FF));

        // Normal: rebias the exponent, widen the mantissa.
        let normal = _mm256_or_si256(
            _mm256_slli_epi32::<23>(_mm256_add_epi32(exp, _mm256_set1_epi32(112))),
            _mm256_slli_epi32::<13>(mant),
        );
        // Subnormal (and zero): value = mant · 2⁻²⁴ — exact, because the
        // ≤10-bit integer converts exactly and the power-of-two scale only
        // shifts the exponent. This replaces the scalar normalisation loop.
        let scale = _mm256_set1_ps(f32::from_bits(0x3380_0000)); // 2^-24
        let subnormal = _mm256_castps_si256(_mm256_mul_ps(_mm256_cvtepi32_ps(mant), scale));
        // Exponent 31: infinity, or the canonical quiet NaN (payload
        // dropped, exactly like the scalar converter).
        let mant_zero = _mm256_cmpeq_epi32(mant, _mm256_setzero_si256());
        let inf_nan = _mm256_blendv_epi8(
            _mm256_set1_epi32(0x7FC0_0000u32 as i32),
            _mm256_set1_epi32(0x7F80_0000u32 as i32),
            mant_zero,
        );

        let exp_zero = _mm256_cmpeq_epi32(exp, _mm256_setzero_si256());
        let exp_max = _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0x1F));
        let mut res = normal;
        res = _mm256_blendv_epi8(res, subnormal, exp_zero);
        res = _mm256_blendv_epi8(res, inf_nan, exp_max);
        _mm256_castsi256_ps(_mm256_or_si256(res, sign))
    }

    /// Bulk `f32 → f16`, writing LE u16 pairs to `dst` (unaligned).
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 and `2 * src.len()` writable bytes at `dst`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn f32_to_f16(src: &[f32], dst: *mut u8) {
        let n = src.len();
        let mut i = 0;
        while i + 8 <= n {
            let h = from_f32x8(_mm256_loadu_ps(src.as_ptr().add(i)));
            _mm_storeu_si128(dst.add(2 * i).cast(), h);
            i += 8;
        }
        while i < n {
            let b = f16::from_f32(src[i]).to_bits().to_le_bytes();
            *dst.add(2 * i) = b[0];
            *dst.add(2 * i + 1) = b[1];
            i += 1;
        }
    }

    /// Bulk `f16 → f32`, reading LE u16 pairs from `src` (unaligned).
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2 and `2 * dst.len()` readable bytes at `src`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn f16_to_f32(src: *const u8, dst: &mut [f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + 8 <= n {
            let v = to_f32x8(_mm_loadu_si128(src.add(2 * i).cast()));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), v);
            i += 8;
        }
        while i < n {
            let bits = u16::from_le_bytes([*src.add(2 * i), *src.add(2 * i + 1)]);
            dst[i] = f16::from_bits(bits).to_f32();
            i += 1;
        }
    }

    /// Bulk FP16 round trip, staying in registers between the conversions.
    ///
    /// # Safety
    ///
    /// Caller guarantees AVX2; slice lengths are equal (asserted upstream).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn f16_roundtrip(src: &[f32], dst: &mut [f32]) {
        let n = src.len();
        let mut i = 0;
        while i + 8 <= n {
            let v = to_f32x8(from_f32x8(_mm256_loadu_ps(src.as_ptr().add(i))));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), v);
            i += 8;
        }
        while i < n {
            dst[i] = f16::from_f32(src[i]).to_f32();
            i += 1;
        }
    }
}

/// 4-wide SSE2 baseline. The `f16 → f32` direction is fully vectorised;
/// `f32 → f16` vectorises the normal/overflow/special cases and falls back
/// to the scalar converter for subnormal-range lanes, which need per-lane
/// variable shifts that SSE2 lacks. Still bit-identical everywhere.
#[cfg(target_arch = "x86_64")]
mod sse2 {
    use crate::half::f16;
    use std::arch::x86_64::*;

    /// `mask ? a : b` per bit (SSE2 has no blendv).
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn blend(mask: __m128i, a: __m128i, b: __m128i) -> __m128i {
        _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b))
    }

    /// Round-to-nearest-even on the dropped low 13 bits.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn rtne_shift13(mant: __m128i) -> __m128i {
        let truncated = _mm_srli_epi32::<13>(mant);
        let dropped = _mm_and_si128(mant, _mm_set1_epi32(0x1FFF));
        let halfway = _mm_set1_epi32(0x1000);
        let above = _mm_cmpgt_epi32(dropped, halfway);
        let odd = _mm_cmpeq_epi32(_mm_and_si128(truncated, _mm_set1_epi32(1)), _mm_set1_epi32(1));
        let tie = _mm_and_si128(_mm_cmpeq_epi32(dropped, halfway), odd);
        _mm_sub_epi32(truncated, _mm_or_si128(above, tie))
    }

    /// Four `f32 → f16` conversions for the non-subnormal cases, plus a
    /// 4-bit mask of the subnormal-range lanes (f32 exponent 102..=112)
    /// the caller must redo with the scalar converter.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn from_f32x4_partial(v: __m128) -> (__m128i, i32) {
        let bits = _mm_castps_si128(v);
        let sign = _mm_and_si128(_mm_srli_epi32::<16>(bits), _mm_set1_epi32(0x8000));
        let exp = _mm_and_si128(_mm_srli_epi32::<23>(bits), _mm_set1_epi32(0xFF));
        let mant = _mm_and_si128(bits, _mm_set1_epi32(0x007F_FFFF));

        let half_exp = _mm_sub_epi32(exp, _mm_set1_epi32(112));
        let normal = _mm_add_epi32(_mm_slli_epi32::<10>(half_exp), rtne_shift13(mant));

        let mant_zero = _mm_cmpeq_epi32(mant, _mm_setzero_si128());
        let special = blend(mant_zero, _mm_set1_epi32(0x7C00), _mm_set1_epi32(0x7E00));

        let is_subnormal = _mm_cmpgt_epi32(exp, _mm_set1_epi32(101));
        let is_normal = _mm_cmpgt_epi32(exp, _mm_set1_epi32(112));
        let is_overflow = _mm_cmpgt_epi32(exp, _mm_set1_epi32(142));
        let is_special = _mm_cmpeq_epi32(exp, _mm_set1_epi32(0xFF));
        let mut res = _mm_setzero_si128(); // underflow → signed zero
        res = blend(is_normal, normal, res);
        res = blend(is_overflow, _mm_set1_epi32(0x7C00), res);
        res = blend(is_special, special, res);
        res = _mm_or_si128(res, sign);
        let subnormal_lanes =
            _mm_movemask_ps(_mm_castsi128_ps(_mm_andnot_si128(is_normal, is_subnormal)));
        (res, subnormal_lanes)
    }

    /// Four `f16 → f32` conversions, bit-identical to `f16::to_f32`.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn to_f32x4(h: __m128i) -> __m128 {
        let bits = _mm_unpacklo_epi16(h, _mm_setzero_si128());
        let sign = _mm_slli_epi32::<16>(_mm_and_si128(bits, _mm_set1_epi32(0x8000)));
        let exp = _mm_and_si128(_mm_srli_epi32::<10>(bits), _mm_set1_epi32(0x1F));
        let mant = _mm_and_si128(bits, _mm_set1_epi32(0x03FF));

        let normal = _mm_or_si128(
            _mm_slli_epi32::<23>(_mm_add_epi32(exp, _mm_set1_epi32(112))),
            _mm_slli_epi32::<13>(mant),
        );
        let scale = _mm_set1_ps(f32::from_bits(0x3380_0000)); // 2^-24, exact
        let subnormal = _mm_castps_si128(_mm_mul_ps(_mm_cvtepi32_ps(mant), scale));
        let mant_zero = _mm_cmpeq_epi32(mant, _mm_setzero_si128());
        let inf_nan = blend(
            mant_zero,
            _mm_set1_epi32(0x7F80_0000u32 as i32),
            _mm_set1_epi32(0x7FC0_0000u32 as i32),
        );

        let exp_zero = _mm_cmpeq_epi32(exp, _mm_setzero_si128());
        let exp_max = _mm_cmpeq_epi32(exp, _mm_set1_epi32(0x1F));
        let mut res = blend(exp_zero, subnormal, normal);
        res = blend(exp_max, inf_nan, res);
        _mm_castsi128_ps(_mm_or_si128(res, sign))
    }

    /// Bulk `f32 → f16`, writing LE u16 pairs to `dst` (unaligned).
    ///
    /// # Safety
    ///
    /// Caller guarantees `2 * src.len()` writable bytes at `dst`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn f32_to_f16(src: &[f32], dst: *mut u8) {
        let n = src.len();
        let mut i = 0;
        let mut tmp = [0u32; 4];
        while i + 4 <= n {
            let (res, subnormal_lanes) = from_f32x4_partial(_mm_loadu_ps(src.as_ptr().add(i)));
            _mm_storeu_si128(tmp.as_mut_ptr().cast(), res);
            for (lane, &r) in tmp.iter().enumerate() {
                let h = if subnormal_lanes & (1 << lane) != 0 {
                    f16::from_f32(src[i + lane]).to_bits()
                } else {
                    r as u16
                };
                let b = h.to_le_bytes();
                *dst.add(2 * (i + lane)) = b[0];
                *dst.add(2 * (i + lane) + 1) = b[1];
            }
            i += 4;
        }
        while i < n {
            let b = f16::from_f32(src[i]).to_bits().to_le_bytes();
            *dst.add(2 * i) = b[0];
            *dst.add(2 * i + 1) = b[1];
            i += 1;
        }
    }

    /// Bulk `f16 → f32`, reading LE u16 pairs from `src` (unaligned).
    ///
    /// # Safety
    ///
    /// Caller guarantees `2 * dst.len()` readable bytes at `src`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn f16_to_f32(src: *const u8, dst: &mut [f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + 4 <= n {
            let h = _mm_loadl_epi64(src.add(2 * i).cast());
            _mm_storeu_ps(dst.as_mut_ptr().add(i), to_f32x4(h));
            i += 4;
        }
        while i < n {
            let bits = u16::from_le_bytes([*src.add(2 * i), *src.add(2 * i + 1)]);
            dst[i] = f16::from_bits(bits).to_f32();
            i += 1;
        }
    }

    /// Bulk FP16 round trip.
    ///
    /// # Safety
    ///
    /// Caller guarantees SSE2; slice lengths are equal (asserted upstream).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn f16_roundtrip(src: &[f32], dst: &mut [f32]) {
        let n = src.len();
        let mut i = 0;
        let mut tmp = [0u16; 4];
        while i + 4 <= n {
            f32_to_f16(&src[i..i + 4], tmp.as_mut_ptr().cast());
            let h = _mm_loadl_epi64(tmp.as_ptr().cast());
            _mm_storeu_ps(dst.as_mut_ptr().add(i), to_f32x4(h));
            i += 4;
        }
        while i < n {
            dst[i] = f16::from_f32(src[i]).to_f32();
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_path_names_round_trip() {
        for path in KernelPath::ALL {
            assert_eq!(KernelPath::parse(path.as_str()), Some(path));
            assert_eq!(KernelPath::parse(&path.as_str().to_uppercase()), Some(path));
            assert_eq!(path.to_string(), path.as_str());
        }
        assert_eq!(KernelPath::parse("neon"), None);
        assert_eq!(KernelPath::default(), KernelPath::Scalar);
    }

    #[test]
    fn kernel_path_serde_uses_lowercase_strings() {
        let mut out = String::new();
        KernelPath::Avx2.write_json(&mut out);
        assert_eq!(out, "\"avx2\"");
        let back = KernelPath::read_json(&Value::String("sse2".into())).unwrap();
        assert_eq!(back, KernelPath::Sse2);
        assert!(KernelPath::read_json(&Value::String("mmx".into())).is_err());
        assert!(KernelPath::read_json(&Value::Null).is_err());
    }

    #[test]
    fn detection_is_consistent() {
        let available = KernelPath::available();
        assert!(available.contains(&KernelPath::Scalar));
        assert!(available.contains(&KernelPath::detect()));
        assert!(KernelPath::active().is_available());
        // The widest available path is the detected one.
        assert_eq!(KernelPath::detect(), *available.iter().max().unwrap());
    }

    /// Adversarial f32 inputs: every exponent × mantissa patterns that sit
    /// on the RTNE tie boundaries, both signs, plus the classic specials.
    fn adversarial_f32_inputs() -> Vec<f32> {
        let mut out = Vec::new();
        let mant_patterns = [
            0u32, 1, 0x0FFF, 0x1000, 0x1001, 0x1FFF, 0x2000, 0x3000, 0x0800, 0x200000, 0x3FFFFF,
            0x400000, 0x5FF000, 0x7FE000, 0x7FF000, 0x7FFFFF,
        ];
        for exp in 0u32..=255 {
            for &mant in &mant_patterns {
                for sign in [0u32, 0x8000_0000] {
                    out.push(f32::from_bits(sign | (exp << 23) | mant));
                }
            }
        }
        // Every f16-representable value as an f32 (covers exact round trips).
        out.extend((0..=u16::MAX).map(|b| f16::from_bits(b).to_f32()));
        out
    }

    #[test]
    fn from_f32_bulk_is_bit_identical_across_paths() {
        let inputs = adversarial_f32_inputs();
        let mut reference = vec![f16::ZERO; inputs.len()];
        f32_to_f16_bulk(KernelPath::Scalar, &inputs, &mut reference);
        for (x, r) in inputs.iter().zip(&reference) {
            assert_eq!(r.to_bits(), f16::from_f32(*x).to_bits(), "scalar bulk vs scalar");
        }
        for path in KernelPath::available() {
            let mut got = vec![f16::ZERO; inputs.len()];
            f32_to_f16_bulk(path, &inputs, &mut got);
            for ((x, r), g) in inputs.iter().zip(&reference).zip(&got) {
                assert_eq!(g.to_bits(), r.to_bits(), "{path}: input {:#010x} ({x})", x.to_bits());
            }
        }
    }

    #[test]
    fn to_f32_bulk_is_bit_identical_across_paths_for_every_bit_pattern() {
        let inputs: Vec<f16> = (0..=u16::MAX).map(f16::from_bits).collect();
        for path in KernelPath::available() {
            let mut got = vec![0.0f32; inputs.len()];
            f16_to_f32_bulk(path, &inputs, &mut got);
            for (h, g) in inputs.iter().zip(&got) {
                assert_eq!(g.to_bits(), h.to_f32().to_bits(), "{path}: bits {:#06x}", h.to_bits());
            }
        }
    }

    #[test]
    fn byte_and_roundtrip_drivers_match_the_slice_drivers() {
        let inputs = adversarial_f32_inputs();
        let mut reference = vec![f16::ZERO; inputs.len()];
        f32_to_f16_bulk(KernelPath::Scalar, &inputs, &mut reference);
        for path in KernelPath::available() {
            // f32 → LE bytes.
            let mut bytes = vec![0u8; 2 * inputs.len()];
            f32_to_f16_bytes_bulk(path, &inputs, &mut bytes);
            for (i, r) in reference.iter().enumerate() {
                let got = u16::from_le_bytes([bytes[2 * i], bytes[2 * i + 1]]);
                assert_eq!(got, r.to_bits(), "{path}: encode index {i}");
            }
            // LE bytes → f32.
            let mut decoded = vec![0.0f32; inputs.len()];
            f16_bytes_to_f32_bulk(path, &bytes, &mut decoded);
            for (i, (r, d)) in reference.iter().zip(&decoded).enumerate() {
                assert_eq!(d.to_bits(), r.to_f32().to_bits(), "{path}: decode index {i}");
            }
            // In-register round trip.
            let mut rt = vec![0.0f32; inputs.len()];
            f16_roundtrip_bulk(path, &inputs, &mut rt);
            for (i, (r, g)) in reference.iter().zip(&rt).enumerate() {
                assert_eq!(g.to_bits(), r.to_f32().to_bits(), "{path}: roundtrip index {i}");
            }
        }
    }

    #[test]
    fn unaligned_byte_buffers_are_handled() {
        // Slice a byte buffer at an odd offset so SIMD loads/stores are
        // genuinely unaligned.
        let inputs: Vec<f32> = (0..37).map(|i| (i as f32 - 18.0) * 0.333).collect();
        for path in KernelPath::available() {
            let mut backing = vec![0u8; 2 * inputs.len() + 1];
            f32_to_f16_bytes_bulk(path, &inputs, &mut backing[1..]);
            let mut decoded = vec![0.0f32; inputs.len()];
            f16_bytes_to_f32_bulk(path, &backing[1..], &mut decoded);
            for (x, d) in inputs.iter().zip(&decoded) {
                assert_eq!(d.to_bits(), f16::from_f32(*x).to_f32().to_bits(), "{path}");
            }
        }
    }

    #[test]
    fn ragged_tails_use_the_scalar_fallback() {
        // Lengths around the vector widths exercise every tail size.
        for n in 0..=19 {
            let inputs: Vec<f32> = (0..n).map(|i| (i as f32) * 1.7 - 3.0).collect();
            let mut reference = vec![f16::ZERO; n];
            f32_to_f16_bulk(KernelPath::Scalar, &inputs, &mut reference);
            for path in KernelPath::available() {
                let mut got = vec![f16::ZERO; n];
                f32_to_f16_bulk(path, &inputs, &mut got);
                assert_eq!(
                    got.iter().map(|h| h.to_bits()).collect::<Vec<_>>(),
                    reference.iter().map(|h| h.to_bits()).collect::<Vec<_>>(),
                    "{path}: n={n}"
                );
            }
        }
    }
}
