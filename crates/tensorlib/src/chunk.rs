//! Subgroup chunking: splitting a flat range into accelerator-sized pieces.
//!
//! SmartUpdate processes the model "in units of a subgroup that fits into the
//! DRAM size of the accelerator" (paper Section V). The [`Chunker`] computes
//! those subgroups for an arbitrary shard length and subgroup capacity.

use serde::{Deserialize, Serialize};

/// One subgroup ("tasklet") of a flat parameter range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subgroup {
    /// Index of the subgroup within its shard (0-based).
    pub index: usize,
    /// Element offset of the subgroup within its shard.
    pub offset: usize,
    /// Number of elements in the subgroup.
    pub len: usize,
}

/// Splits a flat range of `total` elements into subgroups of at most
/// `capacity` elements each.
///
/// # Example
///
/// ```
/// use tensorlib::Chunker;
///
/// let chunker = Chunker::new(10, 4);
/// let sizes: Vec<usize> = chunker.subgroups().map(|s| s.len).collect();
/// assert_eq!(sizes, vec![4, 4, 2]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chunker {
    total: usize,
    capacity: usize,
}

impl Chunker {
    /// Creates a chunker for `total` elements with subgroups of at most
    /// `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(total: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "subgroup capacity must be positive");
        Self { total, capacity }
    }

    /// Total number of elements covered.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Maximum subgroup size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of subgroups (0 when `total` is 0).
    pub fn num_subgroups(&self) -> usize {
        self.total.div_ceil(self.capacity)
    }

    /// Size of the largest subgroup (0 when `total` is 0).
    pub fn max_subgroup_len(&self) -> usize {
        self.total.min(self.capacity)
    }

    /// Iterates over the subgroups in order.
    pub fn subgroups(&self) -> impl Iterator<Item = Subgroup> + '_ {
        let capacity = self.capacity;
        let total = self.total;
        (0..self.num_subgroups()).map(move |index| {
            let offset = index * capacity;
            let len = capacity.min(total - offset);
            Subgroup { index, offset, len }
        })
    }

    /// The subgroup containing element `element`, if it is in range.
    pub fn subgroup_of(&self, element: usize) -> Option<Subgroup> {
        if element >= self.total {
            return None;
        }
        let index = element / self.capacity;
        let offset = index * self.capacity;
        let len = self.capacity.min(self.total - offset);
        Some(Subgroup { index, offset, len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_division_has_equal_chunks() {
        let c = Chunker::new(12, 4);
        assert_eq!(c.num_subgroups(), 3);
        assert_eq!(c.max_subgroup_len(), 4);
        let groups: Vec<_> = c.subgroups().collect();
        assert_eq!(groups[0], Subgroup { index: 0, offset: 0, len: 4 });
        assert_eq!(groups[2], Subgroup { index: 2, offset: 8, len: 4 });
    }

    #[test]
    fn remainder_goes_to_last_chunk() {
        let c = Chunker::new(10, 4);
        let groups: Vec<_> = c.subgroups().collect();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[2].len, 2);
        assert_eq!(c.total(), 10);
        assert_eq!(c.capacity(), 4);
    }

    #[test]
    fn empty_range_has_no_subgroups() {
        let c = Chunker::new(0, 8);
        assert_eq!(c.num_subgroups(), 0);
        assert_eq!(c.max_subgroup_len(), 0);
        assert_eq!(c.subgroups().count(), 0);
        assert_eq!(c.subgroup_of(0), None);
    }

    #[test]
    fn subgroup_of_finds_containing_chunk() {
        let c = Chunker::new(10, 4);
        assert_eq!(c.subgroup_of(0).unwrap().index, 0);
        assert_eq!(c.subgroup_of(3).unwrap().index, 0);
        assert_eq!(c.subgroup_of(4).unwrap().index, 1);
        assert_eq!(c.subgroup_of(9).unwrap(), Subgroup { index: 2, offset: 8, len: 2 });
        assert_eq!(c.subgroup_of(10), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Chunker::new(10, 0);
    }

    proptest! {
        /// Subgroups tile the range exactly: contiguous, ordered, no gaps or overlaps.
        #[test]
        fn subgroups_tile_the_range(total in 0usize..10_000, capacity in 1usize..500) {
            let c = Chunker::new(total, capacity);
            let mut expected_offset = 0;
            for sg in c.subgroups() {
                prop_assert_eq!(sg.offset, expected_offset);
                prop_assert!(sg.len <= capacity);
                prop_assert!(sg.len > 0);
                expected_offset += sg.len;
            }
            prop_assert_eq!(expected_offset, total);
        }

        /// Every element belongs to exactly the subgroup reported by subgroup_of.
        #[test]
        fn subgroup_of_is_consistent(total in 1usize..5000, capacity in 1usize..200, elem_frac in 0.0f64..1.0) {
            let c = Chunker::new(total, capacity);
            let elem = ((total as f64 - 1.0) * elem_frac) as usize;
            let sg = c.subgroup_of(elem).unwrap();
            prop_assert!(sg.offset <= elem && elem < sg.offset + sg.len);
        }
    }
}
