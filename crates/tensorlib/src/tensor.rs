//! Flat `f32` tensors and byte-level precision conversions.

use crate::half::f16;
use crate::simd::KernelPath;
use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Element precision used when serialising a [`FlatTensor`] to bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dtype {
    /// IEEE 754 binary16 (2 bytes per element).
    F16,
    /// IEEE 754 binary32 (4 bytes per element).
    F32,
}

impl Dtype {
    /// Number of bytes per element.
    pub fn bytes_per_element(self) -> usize {
        match self {
            Dtype::F16 => 2,
            Dtype::F32 => 4,
        }
    }
}

/// An owned, flat vector of `f32` values.
///
/// This is deliberately minimal: the workspace only needs element-wise
/// operations over flattened parameter/gradient/optimizer-state vectors, byte
/// serialisation in FP16 or FP32 (what actually travels over PCIe and lands
/// on the SSD), and a few reductions (norms, NaN/Inf scans) used by the mixed
/// precision machinery.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlatTensor {
    data: Vec<f32>,
}

impl FlatTensor {
    /// A tensor of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self { data: vec![0.0; len] }
    }

    /// A tensor filled with `value`.
    pub fn full(len: usize, value: f32) -> Self {
        Self { data: vec![value; len] }
    }

    /// Takes ownership of an existing vector.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// Builds a tensor element-by-element from a function of the index.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f32) -> Self {
        Self { data: (0..len).map(f).collect() }
    }

    /// Deterministic pseudo-random tensor drawn from `N(0, std^2)`.
    pub fn randn(len: usize, std: f32, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let normal = StandardNormal;
        Self { data: (0..len).map(|_| normal.sample(&mut rng) * std).collect() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Serialises the tensor to little-endian bytes in the given precision.
    /// FP16 serialisation performs round-to-nearest-even per element.
    pub fn to_bytes(&self, dtype: Dtype) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_bytes_into(dtype, &mut out);
        out
    }

    /// Serialises into an existing byte buffer, replacing its contents. The
    /// buffer's allocation is reused across calls, so per-iteration hot paths
    /// (CSD P2P transfers, FP16 working-copy refreshes) stop churning the
    /// allocator.
    pub fn to_bytes_into(&self, dtype: Dtype, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(self.data.len() * dtype.bytes_per_element());
        match dtype {
            Dtype::F32 => {
                for v in &self.data {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Dtype::F16 => {
                // Bulk conversion on the detected SIMD path; bit-identical
                // to the per-element `f16::from_f32` encode.
                out.resize(self.data.len() * 2, 0);
                crate::simd::f32_to_f16_bytes_bulk(KernelPath::active(), &self.data, out);
            }
        }
    }

    /// Deserialises a tensor from little-endian bytes in the given precision.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of the element size.
    pub fn from_bytes(bytes: &[u8], dtype: Dtype) -> Self {
        let mut out = FlatTensor::default();
        Self::from_bytes_into(bytes, dtype, &mut out);
        out
    }

    /// Deserialises into an existing tensor, replacing its contents and
    /// reusing its allocation. The FP16 path decodes through the bulk SIMD
    /// conversion ([`crate::f16::to_f32_slice_into`]'s fast path).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of the element size.
    pub fn from_bytes_into(bytes: &[u8], dtype: Dtype, out: &mut FlatTensor) {
        let esize = dtype.bytes_per_element();
        assert!(
            bytes.len() % esize == 0,
            "byte length {} is not a multiple of element size {esize}",
            bytes.len()
        );
        let n = bytes.len() / esize;
        out.data.clear();
        out.data.reserve(n);
        match dtype {
            Dtype::F32 => {
                out.data.extend(
                    bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
                );
            }
            Dtype::F16 => {
                // Bulk decode on the detected SIMD path — bit-identical to
                // decoding each pattern through `f16::to_f32`, with no
                // intermediate buffer.
                out.data.resize(n, 0.0);
                crate::simd::f16_bytes_to_f32_bulk(KernelPath::active(), bytes, &mut out.data);
            }
        }
    }

    /// Writes the FP16-rounded value of every element into `out` (each `f32`
    /// is converted to binary16 and back). This is the mixed-precision
    /// "refresh the FP16 working copy" operation without materialising the
    /// intermediate byte stream: bit-identical to
    /// `from_bytes(&to_bytes(F16), F16)` with zero allocations.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the tensor length.
    pub fn roundtrip_f16_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.data.len(), "output buffer length mismatch");
        f16::roundtrip_slice_into(&self.data, out);
    }

    /// In-place `self = alpha * self + beta * other` (the AXPBY primitive the
    /// FPGA updater is built from, paper Section V-A).
    ///
    /// # Panics
    ///
    /// Panics if the tensors have different lengths.
    pub fn axpby(&mut self, alpha: f32, beta: f32, other: &FlatTensor) {
        assert_eq!(self.len(), other.len(), "axpby length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = alpha * *a + beta * *b;
        }
    }

    /// Scales every element in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Resizes the tensor in place, filling any new elements with `value`.
    /// Shrinking keeps the allocation (scratch-buffer reuse).
    pub fn resize(&mut self, len: usize, value: f32) {
        self.data.resize(len, value);
    }

    /// The L2 norm of the tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>().sqrt() as f32
    }

    /// Sum of squares as `f64` (used to accumulate global norms across blocks).
    pub fn sum_of_squares(&self) -> f64 {
        self.data.iter().map(|v| (*v as f64) * (*v as f64)).sum()
    }

    /// The maximum absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Whether any element is NaN or infinite (the check performed before the
    /// update step in mixed precision training).
    pub fn has_nan_or_inf(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Returns a copy of the sub-range `[offset, offset + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, offset: usize, len: usize) -> FlatTensor {
        let mut out = FlatTensor::default();
        self.slice_into(offset, len, &mut out);
        out
    }

    /// Copies the sub-range `[offset, offset + len)` into an existing tensor,
    /// reusing its allocation (the per-shard scratch pattern of the training
    /// engines).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_into(&self, offset: usize, len: usize, out: &mut FlatTensor) {
        out.data.clear();
        out.data.extend_from_slice(&self.data[offset..offset + len]);
    }

    /// Copies `values` into the sub-range starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_slice(&mut self, offset: usize, values: &[f32]) {
        self.data[offset..offset + values.len()].copy_from_slice(values);
    }

    /// Mean squared difference to another tensor of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the tensors have different lengths.
    pub fn mse(&self, other: &FlatTensor) -> f64 {
        assert_eq!(self.len(), other.len(), "mse length mismatch");
        if self.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum();
        sum / self.len() as f64
    }
}

impl From<Vec<f32>> for FlatTensor {
    fn from(data: Vec<f32>) -> Self {
        Self { data }
    }
}

impl AsRef<[f32]> for FlatTensor {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl FromIterator<f32> for FlatTensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self { data: iter.into_iter().collect() }
    }
}

/// Marsaglia polar method standard normal sampler (avoids pulling in
/// `rand_distr` just for one distribution).
struct StandardNormal;

impl Distribution<f32> for StandardNormal {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        loop {
            let u: f32 = rng.gen_range(-1.0f32..1.0);
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_produce_expected_contents() {
        assert_eq!(FlatTensor::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(FlatTensor::full(2, 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(FlatTensor::from_fn(3, |i| i as f32).as_slice(), &[0.0, 1.0, 2.0]);
        let t: FlatTensor = vec![1.0f32, 2.0].into();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let collected: FlatTensor = (0..4).map(|i| i as f32).collect();
        assert_eq!(collected.into_vec(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn randn_is_deterministic_per_seed_and_roughly_normal() {
        let a = FlatTensor::randn(10_000, 2.0, 42);
        let b = FlatTensor::randn(10_000, 2.0, 42);
        let c = FlatTensor::randn(10_000, 2.0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mean: f32 = a.as_slice().iter().sum::<f32>() / a.len() as f32;
        let var: f32 =
            a.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / a.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn f32_byte_roundtrip_is_exact() {
        let t = FlatTensor::randn(257, 1.0, 1);
        let back = FlatTensor::from_bytes(&t.to_bytes(Dtype::F32), Dtype::F32);
        assert_eq!(t, back);
        assert_eq!(t.to_bytes(Dtype::F32).len(), 257 * Dtype::F32.bytes_per_element());
    }

    #[test]
    fn f16_bytes_have_half_the_size() {
        let t = FlatTensor::zeros(100);
        assert_eq!(t.to_bytes(Dtype::F16).len(), 200);
        assert_eq!(Dtype::F16.bytes_per_element(), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_bytes_rejects_ragged_input() {
        FlatTensor::from_bytes(&[0u8; 7], Dtype::F32);
    }

    #[test]
    fn buffer_reuse_serialisation_matches_the_allocating_api() {
        let t = FlatTensor::randn(513, 3.0, 9);
        let mut bytes = Vec::new();
        let mut back = FlatTensor::zeros(1); // wrong size on purpose: replaced
        for dtype in [Dtype::F32, Dtype::F16] {
            t.to_bytes_into(dtype, &mut bytes);
            assert_eq!(bytes, t.to_bytes(dtype), "{dtype:?} bytes");
            FlatTensor::from_bytes_into(&bytes, dtype, &mut back);
            assert_eq!(back, FlatTensor::from_bytes(&bytes, dtype), "{dtype:?} tensor");
        }
        // Repeated use reuses the same buffers (contents fully replaced).
        let t2 = FlatTensor::randn(64, 1.0, 10);
        t2.to_bytes_into(Dtype::F32, &mut bytes);
        assert_eq!(bytes.len(), 256);
        FlatTensor::from_bytes_into(&bytes, Dtype::F32, &mut back);
        assert_eq!(back, t2);
    }

    #[test]
    fn roundtrip_f16_into_matches_the_byte_path() {
        let t = FlatTensor::from_vec(vec![
            0.0,
            -0.0,
            1.0,
            1.0 + 1.0 / 2048.0,
            65504.0,
            1e30, // saturates to inf
            3.0e-7,
            -2.75,
        ]);
        let byte_path = FlatTensor::from_bytes(&t.to_bytes(Dtype::F16), Dtype::F16);
        let mut direct = vec![0.0f32; t.len()];
        t.roundtrip_f16_into(&mut direct);
        for (a, b) in direct.iter().zip(byte_path.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "output buffer length mismatch")]
    fn roundtrip_f16_into_rejects_wrong_length() {
        FlatTensor::zeros(3).roundtrip_f16_into(&mut [0.0; 4]);
    }

    #[test]
    fn slice_into_reuses_the_target_allocation() {
        let t = FlatTensor::from_fn(10, |i| i as f32);
        let mut out = FlatTensor::full(99, 7.0);
        t.slice_into(2, 5, &mut out);
        assert_eq!(out.as_slice(), &[2.0, 3.0, 4.0, 5.0, 6.0]);
        t.slice_into(9, 1, &mut out);
        assert_eq!(out.as_slice(), &[9.0]);
        t.slice_into(0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn axpby_matches_manual_computation() {
        let mut a = FlatTensor::from_vec(vec![1.0, 2.0, 3.0]);
        let b = FlatTensor::from_vec(vec![10.0, 20.0, 30.0]);
        a.axpby(0.9, 0.1, &b);
        assert_eq!(a.as_slice(), &[1.9, 3.8, 5.7]);
    }

    #[test]
    fn reductions_are_correct() {
        let t = FlatTensor::from_vec(vec![3.0, -4.0]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
        assert!((t.sum_of_squares() - 25.0).abs() < 1e-9);
        assert_eq!(t.max_abs(), 4.0);
        assert!(!t.has_nan_or_inf());
        let mut bad = t.clone();
        bad.as_mut_slice()[0] = f32::NAN;
        assert!(bad.has_nan_or_inf());
        bad.as_mut_slice()[0] = f32::INFINITY;
        assert!(bad.has_nan_or_inf());
    }

    #[test]
    fn slice_and_write_slice_are_inverse() {
        let mut t = FlatTensor::from_fn(10, |i| i as f32);
        let s = t.slice(3, 4);
        assert_eq!(s.as_slice(), &[3.0, 4.0, 5.0, 6.0]);
        t.write_slice(3, &[0.0, 0.0, 0.0, 0.0]);
        assert_eq!(t.slice(3, 4).as_slice(), &[0.0; 4]);
        t.write_slice(3, s.as_slice());
        assert_eq!(t, FlatTensor::from_fn(10, |i| i as f32));
    }

    #[test]
    fn scale_fill_and_mse() {
        let mut t = FlatTensor::from_vec(vec![1.0, 2.0]);
        t.scale(2.0);
        assert_eq!(t.as_slice(), &[2.0, 4.0]);
        let other = FlatTensor::from_vec(vec![2.0, 2.0]);
        assert!((t.mse(&other) - 2.0).abs() < 1e-9);
        t.fill(0.0);
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
        t.resize(4, 5.0);
        assert_eq!(t.as_slice(), &[0.0, 0.0, 5.0, 5.0]);
        t.resize(2, 0.0);
        assert_eq!(t.as_slice(), &[0.0, 0.0]);
        assert_eq!(FlatTensor::zeros(0).mse(&FlatTensor::zeros(0)), 0.0);
        assert_eq!(t.as_ref(), &[0.0, 0.0]);
    }

    proptest! {
        /// FP16 serialisation error per element is bounded by half precision.
        #[test]
        fn f16_roundtrip_error_bounded(values in proptest::collection::vec(-1000.0f32..1000.0, 1..100)) {
            let t = FlatTensor::from_vec(values.clone());
            let back = FlatTensor::from_bytes(&t.to_bytes(Dtype::F16), Dtype::F16);
            for (orig, rt) in values.iter().zip(back.as_slice()) {
                let tol = orig.abs() * 2f32.powi(-10) + 1e-4;
                prop_assert!((orig - rt).abs() <= tol, "{orig} vs {rt}");
            }
        }

        /// The L2 norm is non-negative and zero only for the zero vector.
        #[test]
        fn l2_norm_properties(values in proptest::collection::vec(-100.0f32..100.0, 0..50)) {
            let t = FlatTensor::from_vec(values.clone());
            prop_assert!(t.l2_norm() >= 0.0);
            if values.iter().all(|v| *v == 0.0) {
                prop_assert_eq!(t.l2_norm(), 0.0);
            }
        }

        /// axpby with alpha=1, beta=0 is the identity.
        #[test]
        fn axpby_identity(values in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
            let mut t = FlatTensor::from_vec(values.clone());
            let other = FlatTensor::zeros(values.len());
            t.axpby(1.0, 0.0, &other);
            prop_assert_eq!(t.as_slice(), values.as_slice());
        }
    }
}
