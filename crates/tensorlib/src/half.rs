//! IEEE 754 binary16 (half precision) emulation.
//!
//! Mixed-precision LLM training keeps the working copy of the parameters in
//! FP16 while the optimizer states stay in FP32 (paper Section II-A). The
//! simulator needs a faithful binary16 so that (a) traffic volumes are exact
//! and (b) the functional engines reproduce the numerical behaviour of the
//! FP32-master / FP16-working-copy scheme, including overflow to infinity and
//! the limited mantissa that motivates loss scaling.

use crate::simd::KernelPath;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// Conversions use round-to-nearest-even, matching hardware behaviour.
///
/// # Example
///
/// ```
/// use tensorlib::f16;
///
/// let h = f16::from_f32(1.0 + 1.0 / 2048.0); // below half's resolution at 1.0
/// assert_eq!(h.to_f32(), 1.0);
/// assert!(f16::from_f32(1e6).to_f32().is_infinite()); // overflow saturates to inf
/// ```
#[allow(non_camel_case_types)]
#[repr(transparent)] // guaranteed u16 layout: the SIMD module views slices as raw bits
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct f16(u16);

impl f16 {
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    /// The largest finite binary16 value (65504).
    pub const MAX: f16 = f16(0x7BFF);
    /// Canonical quiet NaN.
    pub const NAN: f16 = f16(0x7E00);
    /// Positive zero.
    pub const ZERO: f16 = f16(0x0000);

    /// Reinterprets raw bits as a half-precision value.
    pub const fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let mant = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN.
            return if mant == 0 { f16(sign | 0x7C00) } else { f16(sign | 0x7E00) };
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased >= 16 {
            // Overflow -> infinity.
            return f16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal half-precision range.
            let half_exp = (unbiased + 15) as u16;
            // 23 -> 10 bits of mantissa: round-to-nearest-even on the dropped 13 bits.
            let mant_with_round = round_shift_right(mant, 13);
            if mant_with_round == 0x400 {
                // Mantissa rounded up past 10 bits; bump the exponent.
                if half_exp + 1 >= 31 {
                    return f16(sign | 0x7C00);
                }
                return f16(sign | ((half_exp + 1) << 10));
            }
            return f16(sign | (half_exp << 10) | (mant_with_round as u16));
        }
        if unbiased >= -25 {
            // Subnormal half-precision.
            let full_mant = mant | 0x0080_0000; // implicit leading 1
            let shift = (-14 - unbiased) as u32 + 13;
            let sub = round_shift_right(full_mant, shift);
            return f16(sign | sub as u16);
        }
        // Underflow to zero.
        f16(sign)
    }

    /// Converts to `f32` exactly (binary16 values are representable in binary32).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let mant = (self.0 & 0x03FF) as u32;
        let bits = if exp == 0 {
            if mant == 0 {
                sign
            } else {
                // Subnormal: value = mant * 2^-24. Normalize by shifting the
                // leading one up to bit 10; each shift halves the exponent.
                let mut shifts = 0u32;
                let mut m = mant;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    shifts += 1;
                }
                m &= 0x03FF;
                sign | ((113 - shifts) << 23) | (m << 13)
            }
        } else if exp == 0x1F {
            if mant == 0 {
                sign | 0x7F80_0000
            } else {
                sign | 0x7FC0_0000
            }
        } else {
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        };
        f32::from_bits(bits)
    }

    /// Whether this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Whether this value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Whether this value is finite (neither infinite nor NaN).
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Bulk [`Self::from_f32`]: converts `src` into `dst` element-wise on the
    /// auto-detected SIMD path ([`KernelPath::active`]). Bit-identical to the
    /// scalar conversion (round-to-nearest-even, saturation, NaN and
    /// subnormal handling included) on every path.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_f32_slice_into(src: &[f32], dst: &mut [f16]) {
        Self::from_f32_slice_into_with(KernelPath::active(), src, dst);
    }

    /// [`Self::from_f32_slice_into`] on an explicit kernel path (equivalence
    /// suites and benchmarks pin paths with this).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or `path` is not
    /// available on this CPU.
    pub fn from_f32_slice_into_with(path: KernelPath, src: &[f32], dst: &mut [f16]) {
        assert!(path.is_available(), "kernel path {path} is not available on this CPU");
        crate::simd::f32_to_f16_bulk(path, src, dst);
    }

    /// Bulk [`Self::to_f32`]: converts `src` into `dst` element-wise on the
    /// auto-detected SIMD path. The scalar tier reads a lazily built
    /// 65536-entry lookup table; the SSE2/AVX2 tiers recompute the expansion
    /// in integer registers. All tiers are bit-identical to [`Self::to_f32`]
    /// (asserted exhaustively over every bit pattern).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn to_f32_slice_into(src: &[f16], dst: &mut [f32]) {
        Self::to_f32_slice_into_with(KernelPath::active(), src, dst);
    }

    /// [`Self::to_f32_slice_into`] on an explicit kernel path.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or `path` is not
    /// available on this CPU.
    pub fn to_f32_slice_into_with(path: KernelPath, src: &[f16], dst: &mut [f32]) {
        assert!(path.is_available(), "kernel path {path} is not available on this CPU");
        crate::simd::f16_to_f32_bulk(path, src, dst);
    }

    /// Bulk FP16 round trip: writes `f16::from_f32(s).to_f32()` for every
    /// element of `src` into `dst`, staying in vector registers on the SIMD
    /// paths. This is the mixed-precision working-copy refresh — the hottest
    /// conversion in the pipelined trainer.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn roundtrip_slice_into(src: &[f32], dst: &mut [f32]) {
        Self::roundtrip_slice_into_with(KernelPath::active(), src, dst);
    }

    /// [`Self::roundtrip_slice_into`] on an explicit kernel path.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or `path` is not
    /// available on this CPU.
    pub fn roundtrip_slice_into_with(path: KernelPath, src: &[f32], dst: &mut [f32]) {
        assert!(path.is_available(), "kernel path {path} is not available on this CPU");
        crate::simd::f16_roundtrip_bulk(path, src, dst);
    }
}

/// The full binary16 → binary32 conversion table, built once on first use.
/// 65536 entries × 4 bytes = 256 KiB; every entry is exactly
/// `f16::from_bits(i).to_f32()`.
pub(crate) fn f16_to_f32_table() -> &'static [f32] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<f32>> = OnceLock::new();
    TABLE.get_or_init(|| (0..=u16::MAX).map(|bits| f16::from_bits(bits).to_f32()).collect())
}

/// Shift right by `shift` bits with round-to-nearest-even on the dropped bits.
fn round_shift_right(value: u32, shift: u32) -> u32 {
    if shift == 0 {
        return value;
    }
    if shift > 31 {
        return 0;
    }
    let truncated = value >> shift;
    let dropped = value & ((1 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if dropped > halfway || (dropped == halfway && truncated & 1 == 1) {
        truncated + 1
    } else {
        truncated
    }
}

impl From<f16> for f32 {
    fn from(h: f16) -> f32 {
        h.to_f32()
    }
}

impl fmt::Display for f16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_small_values_roundtrip() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, -0.5, 2.0, 1.5, 0.099975586, 65504.0, -65504.0] {
            let h = f16::from_f32(v);
            let back = h.to_f32();
            let rel = if v == 0.0 { back.abs() } else { ((back - v) / v).abs() };
            assert!(rel < 1e-3, "{v} -> {back}");
        }
    }

    #[test]
    fn special_values() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::from_f32(f32::INFINITY).is_infinite());
        assert!(f16::from_f32(f32::NEG_INFINITY).is_infinite());
        assert!(f16::from_f32(1e30).is_infinite(), "overflow must saturate to inf");
        assert_eq!(f16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(f16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(f16::MAX.to_f32(), 65504.0);
        assert!(f16::NAN.is_nan());
        assert!(!f16::NAN.is_finite());
        assert!(f16::ZERO.is_finite());
        assert_eq!(f16::INFINITY.to_f32(), f32::INFINITY);
        assert_eq!(f16::NEG_INFINITY.to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn subnormals_are_preserved_approximately() {
        let tiny = 3.0e-7f32; // below the smallest normal half (6.1e-5)
        let h = f16::from_f32(tiny);
        let back = h.to_f32();
        assert!(back > 0.0 && back < 1e-6);
        // Smallest subnormal is 5.96e-8; anything below half of that flushes to zero.
        assert_eq!(f16::from_f32(1.0e-8).to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even_at_tie() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0 + 2^-10; ties go to even (1.0).
        let tie = 1.0 + 2f32.powi(-11);
        assert_eq!(f16::from_f32(tie).to_f32(), 1.0);
        // 1.0 + 3*2^-11 is halfway between 1.0+2^-10 and 1.0+2^-9; ties to even -> 1.0+2^-9.
        let tie2 = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(f16::from_f32(tie2).to_f32(), 1.0 + 2f32.powi(-9));
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(f16::from_f32(1.5).to_string(), "1.5");
        let v: f32 = f16::from_f32(2.0).into();
        assert_eq!(v, 2.0);
    }

    #[test]
    fn bulk_to_f32_matches_scalar_for_every_bit_pattern() {
        // Exhaustive: all 65536 half-precision values, including NaNs,
        // infinities and subnormals, compared bit-for-bit.
        let src: Vec<f16> = (0..=u16::MAX).map(f16::from_bits).collect();
        let mut bulk = vec![0.0f32; src.len()];
        f16::to_f32_slice_into(&src, &mut bulk);
        for (h, b) in src.iter().zip(&bulk) {
            assert_eq!(b.to_bits(), h.to_f32().to_bits(), "bits {:#06x}", h.to_bits());
        }
    }

    #[test]
    fn bulk_from_f32_matches_scalar() {
        let src: Vec<f32> = [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            65504.0,
            65520.0, // rounds to inf
            1e-8,    // flushes to zero
            3.0e-7,  // subnormal
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1.0 + 2f32.powi(-11), // round-to-even tie
        ]
        .into_iter()
        .chain((0..1000).map(|i| (i as f32 - 500.0) * 7.3))
        .collect();
        let mut bulk = vec![f16::ZERO; src.len()];
        f16::from_f32_slice_into(&src, &mut bulk);
        for (s, b) in src.iter().zip(&bulk) {
            assert_eq!(b.to_bits(), f16::from_f32(*s).to_bits(), "value {s}");
        }
    }

    #[test]
    #[should_panic(expected = "conversion length mismatch")]
    fn bulk_conversion_length_mismatch_panics() {
        f16::to_f32_slice_into(&[f16::ZERO; 2], &mut [0.0f32; 3]);
    }

    proptest! {
        /// Round-tripping any f32 through f16 and back is within half-precision
        /// relative error (2^-11) or correctly saturates/flushes.
        #[test]
        fn roundtrip_error_is_bounded(v in -65000.0f32..65000.0) {
            let back = f16::from_f32(v).to_f32();
            if v.abs() >= 6.2e-5 {
                let rel = ((back - v) / v).abs();
                prop_assert!(rel <= 2f32.powi(-11) + 1e-7, "v={v} back={back} rel={rel}");
            } else {
                // Subnormal range: absolute error bounded by the subnormal step.
                prop_assert!((back - v).abs() <= 6.0e-8 * 1.01, "v={v} back={back}");
            }
        }

        /// f16 -> f32 -> f16 is the identity for every bit pattern that is not NaN.
        #[test]
        fn bits_roundtrip_identity(bits in 0u16..=0xFFFF) {
            let h = f16::from_bits(bits);
            prop_assume!(!h.is_nan());
            let rt = f16::from_f32(h.to_f32());
            prop_assert_eq!(rt.to_bits(), bits);
        }

        /// Conversion is monotone on finite values.
        #[test]
        fn conversion_is_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(f16::from_f32(lo).to_f32() <= f16::from_f32(hi).to_f32());
        }
    }
}
