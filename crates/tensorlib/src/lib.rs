//! # tensorlib — flat tensors, half precision and parameter partitioning
//!
//! Storage-offloaded training (ZeRO-Infinity and Smart-Infinity alike) treats
//! a model as one *flattened* parameter vector: partitioning across devices,
//! subgroup chunking for the accelerator DRAM, and mixed-precision
//! conversions are all performed on flat `f32`/`f16` buffers, agnostic of the
//! model architecture (paper Section IV-D). This crate provides those
//! primitives:
//!
//! * [`struct@f16`] — IEEE 754 binary16 emulation with round-to-nearest-even,
//!   matching what the GPU and the FPGA updater exchange.
//! * [`FlatTensor`] — an owned flat `f32` vector with the element-wise
//!   operations the rest of the workspace needs (AXPBY, norms, NaN/Inf scans,
//!   byte-level serialization in either precision).
//! * [`Chunker`] — splits a flat range into fixed-size subgroups ("tasklets")
//!   sized to the accelerator device memory.
//! * [`Partitioner`] — splits the flattened model across multiple devices
//!   (the multi-CSD workload distribution).
//! * [`simd`] — the runtime-dispatched kernel-path layer ([`KernelPath`]):
//!   AVX2/SSE2 `std::arch` paths behind `is_x86_feature_detected!`, with the
//!   scalar loops as the always-available, bit-identical fallback.

// `unsafe` is denied crate-wide; only the `simd` module overrides it with a
// scoped allow for `std::arch` intrinsics (`forbid` would not permit that).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod half;
mod partition;
pub mod simd;
mod tensor;

pub use chunk::{Chunker, Subgroup};
pub use half::f16;
pub use partition::{Partitioner, Shard};
pub use simd::KernelPath;
pub use tensor::{Dtype, FlatTensor};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_roundtrip_f16_through_bytes() {
        let t = FlatTensor::from_vec(vec![0.5, -1.25, 3.0, 65504.0]);
        let bytes = t.to_bytes(Dtype::F16);
        let back = FlatTensor::from_bytes(&bytes, Dtype::F16);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn partition_then_chunk_covers_every_element_once() {
        let n = 10_007;
        let parts = Partitioner::contiguous(n, 3);
        let mut seen = vec![0u8; n];
        for shard in parts.shards() {
            for sg in Chunker::new(shard.len, 1000).subgroups() {
                for i in 0..sg.len {
                    seen[shard.offset + sg.offset + i] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}
