//! Flattened parameter partitioning across devices.
//!
//! Smart-Infinity "flattens the model parameters and equally distributes them
//! to the CSDs, where each CSD takes the responsibility to update the owned
//! parameters" (paper Section IV-D). Because every optimizer operation is
//! element-wise, the partition is agnostic to the model architecture.

use serde::{Deserialize, Serialize};

/// One device's share of the flattened parameter vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shard {
    /// Index of the owning device.
    pub device: usize,
    /// Element offset of the shard within the flattened model.
    pub offset: usize,
    /// Number of elements owned by the device.
    pub len: usize,
}

/// An equal (±1 element) split of `total` flattened parameters across devices.
///
/// # Example
///
/// ```
/// use tensorlib::Partitioner;
///
/// let parts = Partitioner::contiguous(10, 3);
/// let lens: Vec<usize> = parts.shards().iter().map(|s| s.len).collect();
/// assert_eq!(lens, vec![4, 3, 3]);
/// assert_eq!(parts.owner_of(4), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioner {
    total: usize,
    shards: Vec<Shard>,
}

impl Partitioner {
    /// Splits `total` elements into `num_devices` contiguous shards whose
    /// sizes differ by at most one element.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices` is zero.
    pub fn contiguous(total: usize, num_devices: usize) -> Self {
        assert!(num_devices > 0, "cannot partition across zero devices");
        let base = total / num_devices;
        let extra = total % num_devices;
        let mut shards = Vec::with_capacity(num_devices);
        let mut offset = 0;
        for device in 0..num_devices {
            let len = base + usize::from(device < extra);
            shards.push(Shard { device, offset, len });
            offset += len;
        }
        Self { total, shards }
    }

    /// Total number of flattened elements.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.shards.len()
    }

    /// All shards in device order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard owned by `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn shard(&self, device: usize) -> Shard {
        self.shards[device]
    }

    /// The device that owns flattened element `element`.
    ///
    /// # Panics
    ///
    /// Panics if `element >= total`.
    pub fn owner_of(&self, element: usize) -> usize {
        assert!(element < self.total, "element {element} out of range {}", self.total);
        // Shards are contiguous and sorted; binary search by offset.
        match self.shards.binary_search_by(|s| {
            if element < s.offset {
                std::cmp::Ordering::Greater
            } else if element >= s.offset + s.len {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(idx) => idx,
            Err(_) => unreachable!("contiguous shards cover every in-range element"),
        }
    }

    /// The largest shard size (0 when there are no elements).
    pub fn max_shard_len(&self) -> usize {
        self.shards.iter().map(|s| s.len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_split_when_divisible() {
        let p = Partitioner::contiguous(12, 4);
        assert_eq!(p.num_devices(), 4);
        assert!(p.shards().iter().all(|s| s.len == 3));
        assert_eq!(p.total(), 12);
        assert_eq!(p.max_shard_len(), 3);
    }

    #[test]
    fn remainder_spread_over_first_devices() {
        let p = Partitioner::contiguous(10, 3);
        let lens: Vec<_> = p.shards().iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        assert_eq!(p.shard(1), Shard { device: 1, offset: 4, len: 3 });
        assert_eq!(p.max_shard_len(), 4);
    }

    #[test]
    fn single_device_owns_everything() {
        let p = Partitioner::contiguous(100, 1);
        assert_eq!(p.shard(0).len, 100);
        assert_eq!(p.owner_of(99), 0);
    }

    #[test]
    fn more_devices_than_elements_leaves_empty_shards() {
        let p = Partitioner::contiguous(2, 5);
        let lens: Vec<_> = p.shards().iter().map(|s| s.len).collect();
        assert_eq!(lens, vec![1, 1, 0, 0, 0]);
        assert_eq!(p.owner_of(1), 1);
    }

    #[test]
    fn owner_of_matches_shard_ranges() {
        let p = Partitioner::contiguous(10, 3);
        assert_eq!(p.owner_of(0), 0);
        assert_eq!(p.owner_of(3), 0);
        assert_eq!(p.owner_of(4), 1);
        assert_eq!(p.owner_of(6), 1);
        assert_eq!(p.owner_of(7), 2);
        assert_eq!(p.owner_of(9), 2);
    }

    #[test]
    #[should_panic(expected = "zero devices")]
    fn zero_devices_panics() {
        Partitioner::contiguous(10, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn owner_of_out_of_range_panics() {
        Partitioner::contiguous(10, 2).owner_of(10);
    }

    proptest! {
        /// Shards are contiguous, ordered, balanced (±1) and cover every element.
        #[test]
        fn shards_partition_the_range(total in 0usize..100_000, devices in 1usize..32) {
            let p = Partitioner::contiguous(total, devices);
            let mut offset = 0;
            let base = total / devices;
            for (i, s) in p.shards().iter().enumerate() {
                prop_assert_eq!(s.device, i);
                prop_assert_eq!(s.offset, offset);
                prop_assert!(s.len == base || s.len == base + 1);
                offset += s.len;
            }
            prop_assert_eq!(offset, total);
        }

        /// owner_of agrees with the shard table.
        #[test]
        fn owner_of_is_consistent(total in 1usize..50_000, devices in 1usize..32, frac in 0.0f64..1.0) {
            let p = Partitioner::contiguous(total, devices);
            let elem = ((total - 1) as f64 * frac) as usize;
            let owner = p.owner_of(elem);
            let shard = p.shard(owner);
            prop_assert!(shard.offset <= elem && elem < shard.offset + shard.len);
        }
    }
}
