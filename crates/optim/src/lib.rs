//! # optim — optimizers and mixed-precision machinery
//!
//! Storage-offloaded training spends most of its time moving *optimizer
//! state*: with Adam, every parameter drags along an FP32 master copy, a
//! momentum and a variance (6M bytes for an M-byte FP16 model, paper
//! Section II-A). This crate implements the optimizers the paper evaluates —
//! Adam (default), AdamW, SGD with momentum and AdaGrad (Section VII-F) — as
//! element-wise kernels over flat slices, plus the mixed-precision support
//! the update path depends on: dynamic loss scaling, NaN/Inf overflow
//! detection and global-norm gradient clipping (the constraints that prevent
//! overlapping gradient offload with the update, Section IV-C).
//!
//! The same kernels are executed by the host CPU baseline (`ztrain`) and by
//! the CSD FPGA updater model (`csd`), which is exactly the paper's
//! equivalence argument: *"SmartUpdate is algorithmically identical to the
//! baseline training, so the accuracy is exactly the same"* (Section VII-J).
//!
//! # Example
//!
//! ```
//! use optim::{Optimizer, OptimizerKind, HyperParams};
//! use tensorlib::FlatTensor;
//!
//! let opt = Optimizer::new(OptimizerKind::Adam, HyperParams::default());
//! let mut params = FlatTensor::from_vec(vec![1.0, -2.0, 3.0]);
//! let mut aux = opt.init_aux(params.len());
//! let grads = FlatTensor::from_vec(vec![0.1, -0.1, 0.2]);
//! opt.step(params.as_mut_slice(), &grads, &mut aux, 1);
//! assert!(params.as_slice()[0] < 1.0); // moved against the gradient
//! ```

// `unsafe` is denied crate-wide; only the `simd` module overrides it with a
// scoped allow for `std::arch` intrinsics (`forbid` would not permit that).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod mixed;
mod optimizer;
mod simd;

pub use kernels::{
    adagrad_step, adagrad_step_with, adam_step, adam_step_with, adamw_step, adamw_step_with,
    par_adagrad_step, par_adam_step, par_adamw_step, par_sgd_momentum_step, sgd_momentum_step,
    sgd_momentum_step_with,
};
pub use mixed::{clip_global_norm, GradScaler, OverflowStatus};
pub use optimizer::{HyperParams, Optimizer, OptimizerKind};

#[cfg(test)]
mod tests {
    use super::*;
    use tensorlib::FlatTensor;

    /// All optimizers decrease a simple quadratic objective f(x) = ||x||^2 / 2.
    #[test]
    fn every_optimizer_descends_a_quadratic() {
        for kind in [
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
            OptimizerKind::SgdMomentum,
            OptimizerKind::AdaGrad,
        ] {
            let opt = Optimizer::new(kind, HyperParams { lr: 0.05, ..HyperParams::default() });
            let mut params = FlatTensor::from_vec(vec![1.0, -2.0, 0.5, 4.0]);
            let mut aux = opt.init_aux(params.len());
            let initial = params.l2_norm();
            for t in 1..=200 {
                let grads = params.clone(); // grad of ||x||^2/2 is x
                opt.step(params.as_mut_slice(), &grads, &mut aux, t);
            }
            assert!(
                params.l2_norm() < initial * 0.75,
                "{kind:?} failed to descend: {} -> {}",
                initial,
                params.l2_norm()
            );
        }
    }
}
