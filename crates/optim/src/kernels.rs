//! Element-wise optimizer update kernels.
//!
//! Each kernel operates on flat slices and is written as a composition of
//! "moving average" (AXPBY-style) operations, mirroring the structure of the
//! FPGA updater PE (paper Section V-A, Fig. 7): the accelerator is a bank of
//! SIMD AXPBY units plus a final element-wise update, and every supported
//! optimizer is expressed through them.

/// One Adam step (Kingma & Ba, 2015) with bias correction.
///
/// `t` is the 1-based step count used for bias correction.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths or `t == 0`.
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
) {
    assert!(t > 0, "Adam step count is 1-based");
    let n = params.len();
    assert_eq!(n, momentum.len(), "momentum length mismatch");
    assert_eq!(n, variance.len(), "variance length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    let bias1 = 1.0 - beta1.powi(t as i32);
    let bias2 = 1.0 - beta2.powi(t as i32);
    for i in 0..n {
        let g = grads[i];
        // AXPBY: m = beta1 * m + (1 - beta1) * g
        momentum[i] = beta1 * momentum[i] + (1.0 - beta1) * g;
        // AXPBY: v = beta2 * v + (1 - beta2) * g^2
        variance[i] = beta2 * variance[i] + (1.0 - beta2) * g * g;
        let m_hat = momentum[i] / bias1;
        let v_hat = variance[i] / bias2;
        params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

/// One AdamW step (Loshchilov & Hutter, 2019): Adam with decoupled weight decay.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths or `t == 0`.
#[allow(clippy::too_many_arguments)]
pub fn adamw_step(
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
) {
    assert!(t > 0, "AdamW step count is 1-based");
    let n = params.len();
    assert_eq!(n, momentum.len(), "momentum length mismatch");
    assert_eq!(n, variance.len(), "variance length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    let bias1 = 1.0 - beta1.powi(t as i32);
    let bias2 = 1.0 - beta2.powi(t as i32);
    for i in 0..n {
        let g = grads[i];
        momentum[i] = beta1 * momentum[i] + (1.0 - beta1) * g;
        variance[i] = beta2 * variance[i] + (1.0 - beta2) * g * g;
        let m_hat = momentum[i] / bias1;
        let v_hat = variance[i] / bias2;
        // Decoupled weight decay applied directly to the parameter.
        params[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * params[i]);
    }
}

/// One SGD-with-momentum step.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths.
pub fn sgd_momentum_step(
    params: &mut [f32],
    momentum_buf: &mut [f32],
    grads: &[f32],
    lr: f32,
    momentum: f32,
) {
    let n = params.len();
    assert_eq!(n, momentum_buf.len(), "momentum length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    for i in 0..n {
        // AXPBY: buf = momentum * buf + g
        momentum_buf[i] = momentum * momentum_buf[i] + grads[i];
        params[i] -= lr * momentum_buf[i];
    }
}

/// One AdaGrad step (Duchi et al., 2011).
///
/// # Panics
///
/// Panics if the slices have mismatched lengths.
pub fn adagrad_step(params: &mut [f32], accumulator: &mut [f32], grads: &[f32], lr: f32, eps: f32) {
    let n = params.len();
    assert_eq!(n, accumulator.len(), "accumulator length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    for i in 0..n {
        let g = grads[i];
        accumulator[i] += g * g;
        params[i] -= lr * g / (accumulator[i].sqrt() + eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn adam_first_step_matches_closed_form() {
        // With zero-initialized states, after one step m_hat = g and
        // v_hat = g^2, so the update is lr * g / (|g| + eps) ~= lr * sign(g).
        let mut p = vec![0.0f32; 3];
        let mut m = vec![0.0f32; 3];
        let mut v = vec![0.0f32; 3];
        let g = vec![0.5f32, -2.0, 0.0];
        adam_step(&mut p, &mut m, &mut v, &g, 0.1, 0.9, 0.999, 1e-8, 1);
        assert!((p[0] + 0.1).abs() < 1e-4);
        assert!((p[1] - 0.1).abs() < 1e-4);
        assert_eq!(p[2], 0.0);
        assert!((m[0] - 0.05).abs() < 1e-7);
        assert!((v[1] - 0.004).abs() < 1e-6);
    }

    #[test]
    fn adamw_decays_weights_even_with_zero_gradient() {
        let mut p = vec![1.0f32];
        let mut m = vec![0.0f32];
        let mut v = vec![0.0f32];
        adamw_step(&mut p, &mut m, &mut v, &[0.0], 0.1, 0.9, 0.999, 1e-8, 0.1, 1);
        assert!((p[0] - (1.0 - 0.1 * 0.1)).abs() < 1e-6);
        // Plain Adam leaves the parameter untouched under a zero gradient.
        let mut p2 = vec![1.0f32];
        adam_step(&mut p2, &mut [0.0], &mut [0.0], &[0.0], 0.1, 0.9, 0.999, 1e-8, 1);
        assert_eq!(p2[0], 1.0);
    }

    #[test]
    fn sgd_without_momentum_is_plain_gradient_descent() {
        let mut p = vec![1.0f32, 2.0];
        let mut buf = vec![0.0f32; 2];
        sgd_momentum_step(&mut p, &mut buf, &[0.5, -0.5], 0.1, 0.0);
        assert_eq!(p, vec![0.95, 2.05]);
    }

    #[test]
    fn sgd_momentum_accumulates_velocity() {
        let mut p = vec![0.0f32];
        let mut buf = vec![0.0f32];
        sgd_momentum_step(&mut p, &mut buf, &[1.0], 1.0, 0.9);
        sgd_momentum_step(&mut p, &mut buf, &[1.0], 1.0, 0.9);
        // buf after two steps: 1, then 1.9 -> total displacement 2.9.
        assert!((p[0] + 2.9).abs() < 1e-6);
        assert!((buf[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn adagrad_learning_rate_shrinks_with_accumulated_gradient() {
        let mut p = vec![0.0f32];
        let mut acc = vec![0.0f32];
        adagrad_step(&mut p, &mut acc, &[1.0], 0.1, 0.0);
        let first = -p[0];
        adagrad_step(&mut p, &mut acc, &[1.0], 0.1, 0.0);
        let second = -p[0] - first;
        assert!(second < first, "later steps must be smaller: {first} vs {second}");
        assert!((acc[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        adam_step(&mut [0.0; 2], &mut [0.0; 2], &mut [0.0; 2], &[0.0; 3], 0.1, 0.9, 0.999, 1e-8, 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn adam_step_zero_panics() {
        adam_step(&mut [0.0], &mut [0.0], &mut [0.0], &[0.0], 0.1, 0.9, 0.999, 1e-8, 0);
    }

    proptest! {
        /// Adam updates are bounded by roughly lr per step regardless of gradient scale
        /// (the trust-ratio property that makes it robust to loss-scale choices).
        #[test]
        fn adam_step_size_is_bounded(g in -1000.0f32..1000.0, lr in 0.001f32..0.5) {
            let mut p = vec![0.0f32];
            let mut m = vec![0.0f32];
            let mut v = vec![0.0f32];
            adam_step(&mut p, &mut m, &mut v, &[g], lr, 0.9, 0.999, 1e-8, 1);
            prop_assert!(p[0].abs() <= lr * 1.01 + 1e-6);
        }

        /// SGD with momentum=0 moves exactly by -lr * g.
        #[test]
        fn sgd_is_exact_without_momentum(g in -100.0f32..100.0, lr in 0.0f32..1.0) {
            let mut p = vec![1.0f32];
            let mut buf = vec![0.0f32];
            sgd_momentum_step(&mut p, &mut buf, &[g], lr, 0.0);
            prop_assert!((p[0] - (1.0 - lr * g)).abs() < 1e-4);
        }

        /// AdaGrad never increases the accumulator by less than g^2 and never decreases it.
        #[test]
        fn adagrad_accumulator_is_monotone(grads in proptest::collection::vec(-10.0f32..10.0, 1..20)) {
            let mut p = vec![0.0f32];
            let mut acc = vec![0.0f32];
            let mut prev = 0.0f32;
            for g in grads {
                adagrad_step(&mut p, &mut acc, &[g], 0.01, 1e-10);
                prop_assert!(acc[0] >= prev);
                prev = acc[0];
            }
        }
    }
}
