//! Element-wise optimizer update kernels.
//!
//! Each kernel operates on flat slices and is written as a composition of
//! "moving average" (AXPBY-style) operations, mirroring the structure of the
//! FPGA updater PE (paper Section V-A, Fig. 7): the accelerator is a bank of
//! SIMD AXPBY units plus a final element-wise update, and every supported
//! optimizer is expressed through them.
//!
//! Every kernel has a chunked parallel variant (`par_*`) that splits the
//! parameter range into contiguous chunks and fans them out across a
//! [`parcore::ParExecutor`], the way the paper fans subgroup updates across
//! CSDs. The updates are element-wise, so the parallel variants are
//! **bit-identical** to the serial ones for every chunk count — a property
//! the tests assert explicitly.
//!
//! On x86_64 every kernel additionally has AVX2 and SSE2 vector bodies
//! (`crate::simd`), selected at runtime via [`KernelPath::active`]. The
//! vector bodies replay the scalar arithmetic operation-for-operation, so
//! they too are bit-identical — the `*_step_with` variants let callers and
//! tests pin an explicit path.

use parcore::ParExecutor;
use tensorlib::KernelPath;

/// One Adam step (Kingma & Ba, 2015) with bias correction.
///
/// `t` is the 1-based step count used for bias correction.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths or `t == 0`.
#[allow(clippy::too_many_arguments)]
pub fn adam_step(
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
) {
    adam_step_with(
        KernelPath::active(),
        params,
        momentum,
        variance,
        grads,
        lr,
        beta1,
        beta2,
        eps,
        t,
    );
}

/// [`adam_step`] on an explicit [`KernelPath`]. Bit-identical across paths.
///
/// # Panics
///
/// Panics under the same conditions as [`adam_step`], or if `path` is not
/// available on this CPU.
#[allow(clippy::too_many_arguments)]
pub fn adam_step_with(
    path: KernelPath,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
) {
    assert!(path.is_available(), "kernel path {path} is not available on this CPU");
    assert!(t > 0, "Adam step count is 1-based");
    let n = params.len();
    assert_eq!(n, momentum.len(), "momentum length mismatch");
    assert_eq!(n, variance.len(), "variance length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    let bias1 = 1.0 - beta1.powi(t as i32);
    let bias2 = 1.0 - beta2.powi(t as i32);
    crate::simd::adam(path, params, momentum, variance, grads, lr, beta1, beta2, eps, bias1, bias2);
}

/// Scalar Adam body with precomputed bias factors: the bit-exact reference
/// the SIMD lanes replay, and the tail loop for ragged vector remainders.
#[allow(clippy::too_many_arguments)]
pub(crate) fn adam_scalar(
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bias1: f32,
    bias2: f32,
) {
    for i in 0..params.len() {
        let g = grads[i];
        // AXPBY: m = beta1 * m + (1 - beta1) * g
        momentum[i] = beta1 * momentum[i] + (1.0 - beta1) * g;
        // AXPBY: v = beta2 * v + (1 - beta2) * g^2
        variance[i] = beta2 * variance[i] + (1.0 - beta2) * g * g;
        let m_hat = momentum[i] / bias1;
        let v_hat = variance[i] / bias2;
        params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
    }
}

/// One AdamW step (Loshchilov & Hutter, 2019): Adam with decoupled weight decay.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths or `t == 0`.
#[allow(clippy::too_many_arguments)]
pub fn adamw_step(
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
) {
    adamw_step_with(
        KernelPath::active(),
        params,
        momentum,
        variance,
        grads,
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
        t,
    );
}

/// [`adamw_step`] on an explicit [`KernelPath`]. Bit-identical across paths.
///
/// # Panics
///
/// Panics under the same conditions as [`adamw_step`], or if `path` is not
/// available on this CPU.
#[allow(clippy::too_many_arguments)]
pub fn adamw_step_with(
    path: KernelPath,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
) {
    assert!(path.is_available(), "kernel path {path} is not available on this CPU");
    assert!(t > 0, "AdamW step count is 1-based");
    let n = params.len();
    assert_eq!(n, momentum.len(), "momentum length mismatch");
    assert_eq!(n, variance.len(), "variance length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    let bias1 = 1.0 - beta1.powi(t as i32);
    let bias2 = 1.0 - beta2.powi(t as i32);
    crate::simd::adamw(
        path,
        params,
        momentum,
        variance,
        grads,
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
        bias1,
        bias2,
    );
}

/// Scalar AdamW body with precomputed bias factors (reference and tail loop).
#[allow(clippy::too_many_arguments)]
pub(crate) fn adamw_scalar(
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    bias1: f32,
    bias2: f32,
) {
    for i in 0..params.len() {
        let g = grads[i];
        momentum[i] = beta1 * momentum[i] + (1.0 - beta1) * g;
        variance[i] = beta2 * variance[i] + (1.0 - beta2) * g * g;
        let m_hat = momentum[i] / bias1;
        let v_hat = variance[i] / bias2;
        // Decoupled weight decay applied directly to the parameter.
        params[i] -= lr * (m_hat / (v_hat.sqrt() + eps) + weight_decay * params[i]);
    }
}

/// One SGD-with-momentum step.
///
/// # Panics
///
/// Panics if the slices have mismatched lengths.
pub fn sgd_momentum_step(
    params: &mut [f32],
    momentum_buf: &mut [f32],
    grads: &[f32],
    lr: f32,
    momentum: f32,
) {
    sgd_momentum_step_with(KernelPath::active(), params, momentum_buf, grads, lr, momentum);
}

/// [`sgd_momentum_step`] on an explicit [`KernelPath`]. Bit-identical across
/// paths.
///
/// # Panics
///
/// Panics under the same conditions as [`sgd_momentum_step`], or if `path` is
/// not available on this CPU.
pub fn sgd_momentum_step_with(
    path: KernelPath,
    params: &mut [f32],
    momentum_buf: &mut [f32],
    grads: &[f32],
    lr: f32,
    momentum: f32,
) {
    assert!(path.is_available(), "kernel path {path} is not available on this CPU");
    let n = params.len();
    assert_eq!(n, momentum_buf.len(), "momentum length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    crate::simd::sgd_momentum(path, params, momentum_buf, grads, lr, momentum);
}

/// Scalar SGD-with-momentum body (reference and tail loop).
pub(crate) fn sgd_momentum_scalar(
    params: &mut [f32],
    momentum_buf: &mut [f32],
    grads: &[f32],
    lr: f32,
    momentum: f32,
) {
    for i in 0..params.len() {
        // AXPBY: buf = momentum * buf + g
        momentum_buf[i] = momentum * momentum_buf[i] + grads[i];
        params[i] -= lr * momentum_buf[i];
    }
}

/// One AdaGrad step (Duchi et al., 2011).
///
/// # Panics
///
/// Panics if the slices have mismatched lengths.
pub fn adagrad_step(params: &mut [f32], accumulator: &mut [f32], grads: &[f32], lr: f32, eps: f32) {
    adagrad_step_with(KernelPath::active(), params, accumulator, grads, lr, eps);
}

/// [`adagrad_step`] on an explicit [`KernelPath`]. Bit-identical across paths.
///
/// # Panics
///
/// Panics under the same conditions as [`adagrad_step`], or if `path` is not
/// available on this CPU.
pub fn adagrad_step_with(
    path: KernelPath,
    params: &mut [f32],
    accumulator: &mut [f32],
    grads: &[f32],
    lr: f32,
    eps: f32,
) {
    assert!(path.is_available(), "kernel path {path} is not available on this CPU");
    let n = params.len();
    assert_eq!(n, accumulator.len(), "accumulator length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    crate::simd::adagrad(path, params, accumulator, grads, lr, eps);
}

/// Scalar AdaGrad body (reference and tail loop).
pub(crate) fn adagrad_scalar(
    params: &mut [f32],
    accumulator: &mut [f32],
    grads: &[f32],
    lr: f32,
    eps: f32,
) {
    for i in 0..params.len() {
        let g = grads[i];
        accumulator[i] += g * g;
        params[i] -= lr * g / (accumulator[i].sqrt() + eps);
    }
}

/// One chunk of an Adam-family update: three mutable state views plus the
/// shared gradient view, all covering the same index range.
type StateChunk4<'a> = (&'a mut [f32], &'a mut [f32], &'a mut [f32], &'a [f32]);

/// Splits four parallel buffers (three mutable, one shared) into aligned
/// contiguous chunks for shard-parallel dispatch.
fn zip4_chunks<'a>(
    params: &'a mut [f32],
    a: &'a mut [f32],
    b: &'a mut [f32],
    grads: &'a [f32],
    num_chunks: usize,
) -> Vec<StateChunk4<'a>> {
    let p = parcore::split_mut(params, num_chunks);
    let a = parcore::split_mut(a, num_chunks);
    let b = parcore::split_mut(b, num_chunks);
    let g = parcore::split_ref(grads, num_chunks);
    p.into_iter().zip(a).zip(b).zip(g).map(|(((p, a), b), g)| (p, a, b, g)).collect()
}

/// Splits three parallel buffers (two mutable, one shared) into aligned
/// contiguous chunks.
fn zip3_chunks<'a>(
    params: &'a mut [f32],
    a: &'a mut [f32],
    grads: &'a [f32],
    num_chunks: usize,
) -> Vec<(&'a mut [f32], &'a mut [f32], &'a [f32])> {
    let p = parcore::split_mut(params, num_chunks);
    let a = parcore::split_mut(a, num_chunks);
    let g = parcore::split_ref(grads, num_chunks);
    p.into_iter().zip(a).zip(g).map(|((p, a), g)| (p, a, g)).collect()
}

/// Chunked parallel [`adam_step`]: splits the buffers into `num_chunks`
/// contiguous pieces and updates them concurrently on `pool`. Bit-identical
/// to the serial kernel for every chunk count.
///
/// # Panics
///
/// Panics under the same conditions as [`adam_step`], or if `num_chunks` is 0.
#[allow(clippy::too_many_arguments)]
pub fn par_adam_step(
    pool: &ParExecutor,
    num_chunks: usize,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
) {
    assert!(num_chunks > 0, "chunk count must be positive");
    if num_chunks == 1 {
        // Serial fast path: no chunking plumbing, no allocations.
        return adam_step(params, momentum, variance, grads, lr, beta1, beta2, eps, t);
    }
    assert!(t > 0, "Adam step count is 1-based");
    let n = params.len();
    assert_eq!(n, momentum.len(), "momentum length mismatch");
    assert_eq!(n, variance.len(), "variance length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    pool.for_each(zip4_chunks(params, momentum, variance, grads, num_chunks), |_, (p, m, v, g)| {
        adam_step(p, m, v, g, lr, beta1, beta2, eps, t);
    });
}

/// Chunked parallel [`adamw_step`]. Bit-identical to the serial kernel.
///
/// # Panics
///
/// Panics under the same conditions as [`adamw_step`], or if `num_chunks` is 0.
#[allow(clippy::too_many_arguments)]
pub fn par_adamw_step(
    pool: &ParExecutor,
    num_chunks: usize,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
) {
    assert!(num_chunks > 0, "chunk count must be positive");
    if num_chunks == 1 {
        return adamw_step(
            params,
            momentum,
            variance,
            grads,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t,
        );
    }
    assert!(t > 0, "AdamW step count is 1-based");
    let n = params.len();
    assert_eq!(n, momentum.len(), "momentum length mismatch");
    assert_eq!(n, variance.len(), "variance length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    pool.for_each(zip4_chunks(params, momentum, variance, grads, num_chunks), |_, (p, m, v, g)| {
        adamw_step(p, m, v, g, lr, beta1, beta2, eps, weight_decay, t);
    });
}

/// Chunked parallel [`sgd_momentum_step`]. Bit-identical to the serial kernel.
///
/// # Panics
///
/// Panics under the same conditions as [`sgd_momentum_step`], or if
/// `num_chunks` is 0.
pub fn par_sgd_momentum_step(
    pool: &ParExecutor,
    num_chunks: usize,
    params: &mut [f32],
    momentum_buf: &mut [f32],
    grads: &[f32],
    lr: f32,
    momentum: f32,
) {
    assert!(num_chunks > 0, "chunk count must be positive");
    if num_chunks == 1 {
        return sgd_momentum_step(params, momentum_buf, grads, lr, momentum);
    }
    let n = params.len();
    assert_eq!(n, momentum_buf.len(), "momentum length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    pool.for_each(zip3_chunks(params, momentum_buf, grads, num_chunks), |_, (p, buf, g)| {
        sgd_momentum_step(p, buf, g, lr, momentum);
    });
}

/// Chunked parallel [`adagrad_step`]. Bit-identical to the serial kernel.
///
/// # Panics
///
/// Panics under the same conditions as [`adagrad_step`], or if `num_chunks`
/// is 0.
pub fn par_adagrad_step(
    pool: &ParExecutor,
    num_chunks: usize,
    params: &mut [f32],
    accumulator: &mut [f32],
    grads: &[f32],
    lr: f32,
    eps: f32,
) {
    assert!(num_chunks > 0, "chunk count must be positive");
    if num_chunks == 1 {
        return adagrad_step(params, accumulator, grads, lr, eps);
    }
    let n = params.len();
    assert_eq!(n, accumulator.len(), "accumulator length mismatch");
    assert_eq!(n, grads.len(), "gradient length mismatch");
    pool.for_each(zip3_chunks(params, accumulator, grads, num_chunks), |_, (p, acc, g)| {
        adagrad_step(p, acc, g, lr, eps);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn adam_first_step_matches_closed_form() {
        // With zero-initialized states, after one step m_hat = g and
        // v_hat = g^2, so the update is lr * g / (|g| + eps) ~= lr * sign(g).
        let mut p = vec![0.0f32; 3];
        let mut m = vec![0.0f32; 3];
        let mut v = vec![0.0f32; 3];
        let g = vec![0.5f32, -2.0, 0.0];
        adam_step(&mut p, &mut m, &mut v, &g, 0.1, 0.9, 0.999, 1e-8, 1);
        assert!((p[0] + 0.1).abs() < 1e-4);
        assert!((p[1] - 0.1).abs() < 1e-4);
        assert_eq!(p[2], 0.0);
        assert!((m[0] - 0.05).abs() < 1e-7);
        assert!((v[1] - 0.004).abs() < 1e-6);
    }

    #[test]
    fn adamw_decays_weights_even_with_zero_gradient() {
        let mut p = vec![1.0f32];
        let mut m = vec![0.0f32];
        let mut v = vec![0.0f32];
        adamw_step(&mut p, &mut m, &mut v, &[0.0], 0.1, 0.9, 0.999, 1e-8, 0.1, 1);
        assert!((p[0] - (1.0 - 0.1 * 0.1)).abs() < 1e-6);
        // Plain Adam leaves the parameter untouched under a zero gradient.
        let mut p2 = vec![1.0f32];
        adam_step(&mut p2, &mut [0.0], &mut [0.0], &[0.0], 0.1, 0.9, 0.999, 1e-8, 1);
        assert_eq!(p2[0], 1.0);
    }

    #[test]
    fn sgd_without_momentum_is_plain_gradient_descent() {
        let mut p = vec![1.0f32, 2.0];
        let mut buf = vec![0.0f32; 2];
        sgd_momentum_step(&mut p, &mut buf, &[0.5, -0.5], 0.1, 0.0);
        assert_eq!(p, vec![0.95, 2.05]);
    }

    #[test]
    fn sgd_momentum_accumulates_velocity() {
        let mut p = vec![0.0f32];
        let mut buf = vec![0.0f32];
        sgd_momentum_step(&mut p, &mut buf, &[1.0], 1.0, 0.9);
        sgd_momentum_step(&mut p, &mut buf, &[1.0], 1.0, 0.9);
        // buf after two steps: 1, then 1.9 -> total displacement 2.9.
        assert!((p[0] + 2.9).abs() < 1e-6);
        assert!((buf[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn adagrad_learning_rate_shrinks_with_accumulated_gradient() {
        let mut p = vec![0.0f32];
        let mut acc = vec![0.0f32];
        adagrad_step(&mut p, &mut acc, &[1.0], 0.1, 0.0);
        let first = -p[0];
        adagrad_step(&mut p, &mut acc, &[1.0], 0.1, 0.0);
        let second = -p[0] - first;
        assert!(second < first, "later steps must be smaller: {first} vs {second}");
        assert!((acc[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        adam_step(&mut [0.0; 2], &mut [0.0; 2], &mut [0.0; 2], &[0.0; 3], 0.1, 0.9, 0.999, 1e-8, 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn adam_step_zero_panics() {
        adam_step(&mut [0.0], &mut [0.0], &mut [0.0], &[0.0], 0.1, 0.9, 0.999, 1e-8, 0);
    }

    /// Chunk counts exercised by every parallel-equivalence test: the serial
    /// case, small counts that leave ragged tails, a prime, and the machine's
    /// actual parallelism.
    fn chunk_counts() -> Vec<usize> {
        let cpus = ParExecutor::current().num_threads();
        vec![1, 2, 7, cpus.max(2)]
    }

    #[test]
    fn par_adam_is_bit_identical_across_chunk_counts() {
        let n = 10_007; // prime → every chunk count leaves a ragged tail
        let grads: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.37).sin()).collect();
        let mut p_ref: Vec<f32> = (0..n).map(|i| (i as f32) * 1e-4).collect();
        let mut m_ref = vec![0.0f32; n];
        let mut v_ref = vec![0.0f32; n];
        for t in 1..=3 {
            adam_step(&mut p_ref, &mut m_ref, &mut v_ref, &grads, 0.01, 0.9, 0.999, 1e-8, t);
        }
        for chunks in chunk_counts() {
            let pool = ParExecutor::new(4);
            let mut p: Vec<f32> = (0..n).map(|i| (i as f32) * 1e-4).collect();
            let mut m = vec![0.0f32; n];
            let mut v = vec![0.0f32; n];
            for t in 1..=3 {
                par_adam_step(
                    &pool, chunks, &mut p, &mut m, &mut v, &grads, 0.01, 0.9, 0.999, 1e-8, t,
                );
            }
            assert_eq!(p, p_ref, "params diverged at chunks={chunks}");
            assert_eq!(m, m_ref, "momentum diverged at chunks={chunks}");
            assert_eq!(v, v_ref, "variance diverged at chunks={chunks}");
        }
    }

    #[test]
    fn par_kernels_match_serial_for_all_optimizers() {
        let n = 4099;
        let grads: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.11).cos() * 0.1).collect();
        let init: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.05).sin()).collect();
        for chunks in chunk_counts() {
            let pool = ParExecutor::new(3);
            // AdamW.
            let (mut p1, mut m1, mut v1) = (init.clone(), vec![0.0; n], vec![0.0; n]);
            let (mut p2, mut m2, mut v2) = (init.clone(), vec![0.0; n], vec![0.0; n]);
            adamw_step(&mut p1, &mut m1, &mut v1, &grads, 0.01, 0.9, 0.999, 1e-8, 0.1, 1);
            par_adamw_step(
                &pool, chunks, &mut p2, &mut m2, &mut v2, &grads, 0.01, 0.9, 0.999, 1e-8, 0.1, 1,
            );
            assert_eq!(p1, p2, "AdamW chunks={chunks}");
            assert_eq!(v1, v2, "AdamW variance chunks={chunks}");
            // SGD momentum.
            let (mut p1, mut b1) = (init.clone(), vec![0.0; n]);
            let (mut p2, mut b2) = (init.clone(), vec![0.0; n]);
            sgd_momentum_step(&mut p1, &mut b1, &grads, 0.1, 0.9);
            par_sgd_momentum_step(&pool, chunks, &mut p2, &mut b2, &grads, 0.1, 0.9);
            assert_eq!(p1, p2, "SGD chunks={chunks}");
            assert_eq!(b1, b2, "SGD momentum chunks={chunks}");
            // AdaGrad.
            let (mut p1, mut a1) = (init.clone(), vec![0.0; n]);
            let (mut p2, mut a2) = (init.clone(), vec![0.0; n]);
            adagrad_step(&mut p1, &mut a1, &grads, 0.1, 1e-10);
            par_adagrad_step(&pool, chunks, &mut p2, &mut a2, &grads, 0.1, 1e-10);
            assert_eq!(p1, p2, "AdaGrad chunks={chunks}");
            assert_eq!(a1, a2, "AdaGrad accumulator chunks={chunks}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn par_adam_mismatched_lengths_panic() {
        par_adam_step(
            &ParExecutor::serial(),
            2,
            &mut [0.0; 2],
            &mut [0.0; 2],
            &mut [0.0; 2],
            &[0.0; 3],
            0.1,
            0.9,
            0.999,
            1e-8,
            1,
        );
    }

    /// Bitwise slice equality: NaNs compare by representation, not by IEEE
    /// semantics, so a payload divergence between paths is caught.
    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: lane {i}: {x:?} vs {y:?}");
        }
    }

    /// A gradient/state vector covering every IEEE class: normals of all
    /// scales, subnormals, zeros, infinities and NaNs, at a prime length so
    /// every vector width leaves a ragged tail.
    fn adversarial_values(seed: u32) -> Vec<f32> {
        let mut out = Vec::new();
        let specials = [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,           // smallest normal
            f32::from_bits(1),           // smallest subnormal
            f32::from_bits(0x007F_FFFF), // largest subnormal
            f32::MAX,
            f32::MIN,
            1.0,
            -1.0,
        ];
        out.extend_from_slice(&specials);
        // Deterministic pseudo-random normals across the exponent range.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        while out.len() < 131 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let exp = 64 + (state >> 24) % 128; // exponents 64..192
            let mant = state & 0x007F_FFFF;
            let sign = state & 0x8000_0000;
            out.push(f32::from_bits(sign | (exp << 23) | mant));
        }
        out
    }

    #[test]
    fn vector_paths_match_scalar_on_adversarial_inputs() {
        let grads = adversarial_values(7);
        let init_p = adversarial_values(11);
        let n = grads.len();
        for t in [1u64, 3, 1000] {
            // Scalar reference.
            let (mut p0, mut m0, mut v0) = (init_p.clone(), vec![0.1f32; n], vec![0.2f32; n]);
            adam_step_with(
                KernelPath::Scalar,
                &mut p0,
                &mut m0,
                &mut v0,
                &grads,
                0.01,
                0.9,
                0.999,
                1e-8,
                t,
            );
            let (mut pw0, mut mw0, mut vw0) = (init_p.clone(), vec![0.1f32; n], vec![0.2f32; n]);
            adamw_step_with(
                KernelPath::Scalar,
                &mut pw0,
                &mut mw0,
                &mut vw0,
                &grads,
                0.01,
                0.9,
                0.999,
                1e-8,
                0.1,
                t,
            );
            let (mut ps0, mut bs0) = (init_p.clone(), vec![0.3f32; n]);
            sgd_momentum_step_with(KernelPath::Scalar, &mut ps0, &mut bs0, &grads, 0.1, 0.9);
            let (mut pa0, mut aa0) = (init_p.clone(), vec![0.4f32; n]);
            adagrad_step_with(KernelPath::Scalar, &mut pa0, &mut aa0, &grads, 0.1, 1e-10);

            for path in KernelPath::available() {
                let (mut p, mut m, mut v) = (init_p.clone(), vec![0.1f32; n], vec![0.2f32; n]);
                adam_step_with(path, &mut p, &mut m, &mut v, &grads, 0.01, 0.9, 0.999, 1e-8, t);
                assert_bits_eq(&p, &p0, &format!("adam params {path} t={t}"));
                assert_bits_eq(&m, &m0, &format!("adam momentum {path} t={t}"));
                assert_bits_eq(&v, &v0, &format!("adam variance {path} t={t}"));

                let (mut p, mut m, mut v) = (init_p.clone(), vec![0.1f32; n], vec![0.2f32; n]);
                adamw_step_with(
                    path, &mut p, &mut m, &mut v, &grads, 0.01, 0.9, 0.999, 1e-8, 0.1, t,
                );
                assert_bits_eq(&p, &pw0, &format!("adamw params {path} t={t}"));
                assert_bits_eq(&v, &vw0, &format!("adamw variance {path} t={t}"));

                let (mut p, mut b) = (init_p.clone(), vec![0.3f32; n]);
                sgd_momentum_step_with(path, &mut p, &mut b, &grads, 0.1, 0.9);
                assert_bits_eq(&p, &ps0, &format!("sgd params {path}"));
                assert_bits_eq(&b, &bs0, &format!("sgd buf {path}"));

                let (mut p, mut a) = (init_p.clone(), vec![0.4f32; n]);
                adagrad_step_with(path, &mut p, &mut a, &grads, 0.1, 1e-10);
                assert_bits_eq(&p, &pa0, &format!("adagrad params {path}"));
                assert_bits_eq(&a, &aa0, &format!("adagrad acc {path}"));
            }
        }
    }

    #[test]
    fn vector_paths_handle_every_length_tail() {
        // Lengths 0..=19 cover empty, sub-width, exact-width and ragged cases
        // for both the 4-wide and 8-wide kernels.
        for n in 0..20usize {
            let grads: Vec<f32> = (0..n).map(|i| ((i as f32) - 7.5) * 0.3).collect();
            let init: Vec<f32> = (0..n).map(|i| (i as f32) * 0.1).collect();
            let (mut p0, mut m0, mut v0) = (init.clone(), vec![0.0f32; n], vec![0.0f32; n]);
            adam_step_with(
                KernelPath::Scalar,
                &mut p0,
                &mut m0,
                &mut v0,
                &grads,
                0.01,
                0.9,
                0.999,
                1e-8,
                1,
            );
            for path in KernelPath::available() {
                let (mut p, mut m, mut v) = (init.clone(), vec![0.0f32; n], vec![0.0f32; n]);
                adam_step_with(path, &mut p, &mut m, &mut v, &grads, 0.01, 0.9, 0.999, 1e-8, 1);
                assert_bits_eq(&p, &p0, &format!("adam n={n} {path}"));
            }
        }
    }

    proptest! {
        /// Vector Adam/AdamW are bit-identical to scalar for arbitrary f32
        /// bit patterns — including NaNs, infinities and subnormals — across
        /// every available kernel path.
        #[test]
        fn simd_adam_matches_scalar_for_arbitrary_bits(
            grad_bits in proptest::collection::vec(any::<u32>(), 1..200),
            param_bits in proptest::collection::vec(any::<u32>(), 1..200),
        ) {
            let n = grad_bits.len().min(param_bits.len());
            let grads: Vec<f32> = grad_bits[..n].iter().map(|&b| f32::from_bits(b)).collect();
            let init: Vec<f32> = param_bits[..n].iter().map(|&b| f32::from_bits(b)).collect();
            let (mut p0, mut m0, mut v0) = (init.clone(), vec![0.1f32; n], vec![0.2f32; n]);
            adam_step_with(KernelPath::Scalar, &mut p0, &mut m0, &mut v0, &grads, 0.01, 0.9, 0.999, 1e-8, 2);
            let (mut pw0, mut mw0, mut vw0) = (init.clone(), vec![0.1f32; n], vec![0.2f32; n]);
            adamw_step_with(KernelPath::Scalar, &mut pw0, &mut mw0, &mut vw0, &grads, 0.01, 0.9, 0.999, 1e-8, 0.1, 2);
            for path in KernelPath::available() {
                let (mut p, mut m, mut v) = (init.clone(), vec![0.1f32; n], vec![0.2f32; n]);
                adam_step_with(path, &mut p, &mut m, &mut v, &grads, 0.01, 0.9, 0.999, 1e-8, 2);
                for i in 0..n {
                    prop_assert_eq!(p[i].to_bits(), p0[i].to_bits(), "adam p[{}] {}", i, path);
                    prop_assert_eq!(m[i].to_bits(), m0[i].to_bits(), "adam m[{}] {}", i, path);
                    prop_assert_eq!(v[i].to_bits(), v0[i].to_bits(), "adam v[{}] {}", i, path);
                }
                let (mut p, mut m, mut v) = (init.clone(), vec![0.1f32; n], vec![0.2f32; n]);
                adamw_step_with(path, &mut p, &mut m, &mut v, &grads, 0.01, 0.9, 0.999, 1e-8, 0.1, 2);
                for i in 0..n {
                    prop_assert_eq!(p[i].to_bits(), pw0[i].to_bits(), "adamw p[{}] {}", i, path);
                }
                let _ = (&mw0, &vw0);
            }
        }

        /// Parallel Adam is bit-identical to serial Adam for random shapes,
        /// hyper-parameters, chunk counts and thread counts.
        #[test]
        fn par_adam_matches_serial_for_random_inputs(
            values in proptest::collection::vec(-10.0f32..10.0, 1..400),
            chunks in 1usize..12,
            threads in 1usize..6,
            lr in 0.0001f32..0.1,
        ) {
            let n = values.len();
            let mut p1: Vec<f32> = values.iter().map(|v| v * 0.5).collect();
            let mut m1 = vec![0.1f32; n];
            let mut v1 = vec![0.2f32; n];
            let (mut p2, mut m2, mut v2) = (p1.clone(), m1.clone(), v1.clone());
            adam_step(&mut p1, &mut m1, &mut v1, &values, lr, 0.9, 0.999, 1e-8, 2);
            let pool = ParExecutor::new(threads);
            par_adam_step(&pool, chunks, &mut p2, &mut m2, &mut v2, &values, lr, 0.9, 0.999, 1e-8, 2);
            prop_assert_eq!(p1, p2);
            prop_assert_eq!(m1, m2);
            prop_assert_eq!(v1, v2);
        }

        /// Adam updates are bounded by roughly lr per step regardless of gradient scale
        /// (the trust-ratio property that makes it robust to loss-scale choices).
        #[test]
        fn adam_step_size_is_bounded(g in -1000.0f32..1000.0, lr in 0.001f32..0.5) {
            let mut p = vec![0.0f32];
            let mut m = vec![0.0f32];
            let mut v = vec![0.0f32];
            adam_step(&mut p, &mut m, &mut v, &[g], lr, 0.9, 0.999, 1e-8, 1);
            prop_assert!(p[0].abs() <= lr * 1.01 + 1e-6);
        }

        /// SGD with momentum=0 moves exactly by -lr * g.
        #[test]
        fn sgd_is_exact_without_momentum(g in -100.0f32..100.0, lr in 0.0f32..1.0) {
            let mut p = vec![1.0f32];
            let mut buf = vec![0.0f32];
            sgd_momentum_step(&mut p, &mut buf, &[g], lr, 0.0);
            prop_assert!((p[0] - (1.0 - lr * g)).abs() < 1e-4);
        }

        /// AdaGrad never increases the accumulator by less than g^2 and never decreases it.
        #[test]
        fn adagrad_accumulator_is_monotone(grads in proptest::collection::vec(-10.0f32..10.0, 1..20)) {
            let mut p = vec![0.0f32];
            let mut acc = vec![0.0f32];
            let mut prev = 0.0f32;
            for g in grads {
                adagrad_step(&mut p, &mut acc, &[g], 0.01, 1e-10);
                prop_assert!(acc[0] >= prev);
                prev = acc[0];
            }
        }
    }
}
