//! Mixed-precision training support: dynamic loss scaling, overflow
//! detection and global-norm gradient clipping.
//!
//! These are the mechanisms the paper cites as the reason gradient offloading
//! cannot simply be overlapped with the update step (Section IV-C): before
//! any parameter can be updated, *all* gradients must have been produced and
//! scanned for NaN/Inf (loss scaling) and their global norm must be known
//! (clipping).

use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// Result of an overflow scan over a set of gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowStatus {
    /// All gradients are finite; the step may proceed.
    Finite,
    /// At least one gradient is NaN or infinite; the step must be skipped and
    /// the loss scale reduced.
    Overflow,
}

/// Dynamic loss scaler for FP16 mixed-precision training.
///
/// Mirrors the standard scheme (Micikevicius et al., 2018, as used by
/// DeepSpeed): the loss is multiplied by `scale` before the backward pass;
/// if the resulting gradients contain NaN/Inf the step is skipped and the
/// scale halved, otherwise after `growth_interval` consecutive good steps the
/// scale is doubled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
    min_scale: f32,
    max_scale: f32,
}

impl Default for GradScaler {
    fn default() -> Self {
        Self::new(65536.0)
    }
}

impl GradScaler {
    /// Creates a scaler with the given initial loss scale and standard
    /// growth/backoff behaviour (x2 / ÷2, growth interval 2000).
    pub fn new(initial_scale: f32) -> Self {
        Self {
            scale: initial_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            good_steps: 0,
            min_scale: 1.0,
            max_scale: 2.0f32.powi(24),
        }
    }

    /// Overrides the growth interval (number of consecutive finite steps
    /// before the scale is increased).
    pub fn with_growth_interval(mut self, interval: u32) -> Self {
        self.growth_interval = interval.max(1);
        self
    }

    /// The current loss scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Multiplies a loss value by the current scale.
    pub fn scale_loss(&self, loss: f32) -> f32 {
        loss * self.scale
    }

    /// Divides gradients by the current scale in place (unscaling before the
    /// optimizer step).
    pub fn unscale(&self, grads: &mut FlatTensor) {
        grads.scale(1.0 / self.scale);
    }

    /// Scans gradient blocks for NaN/Inf.
    pub fn check_overflow<'a>(
        &self,
        grads: impl IntoIterator<Item = &'a FlatTensor>,
    ) -> OverflowStatus {
        for g in grads {
            if g.has_nan_or_inf() {
                return OverflowStatus::Overflow;
            }
        }
        OverflowStatus::Finite
    }

    /// Updates the scale after a step: halves it on overflow, doubles it after
    /// `growth_interval` consecutive finite steps. Returns `true` if the
    /// optimizer step should be applied (i.e. no overflow occurred).
    pub fn update(&mut self, status: OverflowStatus) -> bool {
        match status {
            OverflowStatus::Overflow => {
                self.scale = (self.scale * self.backoff_factor).max(self.min_scale);
                self.good_steps = 0;
                false
            }
            OverflowStatus::Finite => {
                self.good_steps += 1;
                if self.good_steps >= self.growth_interval {
                    self.scale = (self.scale * self.growth_factor).min(self.max_scale);
                    self.good_steps = 0;
                }
                true
            }
        }
    }
}

/// Clips a set of gradient blocks to a maximum global L2 norm.
///
/// Returns the global norm *before* clipping. If the norm is below
/// `max_norm` (or `max_norm` is non-positive) the gradients are unchanged.
pub fn clip_global_norm(grads: &mut [FlatTensor], max_norm: f32) -> f32 {
    let total_sq: f64 = grads.iter().map(FlatTensor::sum_of_squares).sum();
    let norm = total_sq.sqrt() as f32;
    if max_norm > 0.0 && norm > max_norm {
        let factor = max_norm / (norm + 1e-6);
        for g in grads.iter_mut() {
            g.scale(factor);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn overflow_halves_the_scale_and_skips_the_step() {
        let mut scaler = GradScaler::new(1024.0);
        let bad = FlatTensor::from_vec(vec![1.0, f32::INFINITY]);
        let status = scaler.check_overflow([&bad]);
        assert_eq!(status, OverflowStatus::Overflow);
        let apply = scaler.update(status);
        assert!(!apply);
        assert_eq!(scaler.scale(), 512.0);
    }

    #[test]
    fn scale_grows_after_enough_good_steps() {
        let mut scaler = GradScaler::new(8.0).with_growth_interval(3);
        let good = FlatTensor::from_vec(vec![0.1, -0.2]);
        for _ in 0..2 {
            let s = scaler.check_overflow([&good]);
            assert!(scaler.update(s));
            assert_eq!(scaler.scale(), 8.0);
        }
        let s = scaler.check_overflow([&good]);
        assert!(scaler.update(s));
        assert_eq!(scaler.scale(), 16.0);
    }

    #[test]
    fn scale_never_drops_below_one() {
        let mut scaler = GradScaler::new(2.0);
        for _ in 0..10 {
            scaler.update(OverflowStatus::Overflow);
        }
        assert_eq!(scaler.scale(), 1.0);
    }

    #[test]
    fn scale_and_unscale_are_inverse() {
        let scaler = GradScaler::new(4096.0);
        assert_eq!(scaler.scale_loss(2.0), 8192.0);
        let mut g = FlatTensor::from_vec(vec![4096.0, -8192.0]);
        scaler.unscale(&mut g);
        assert_eq!(g.as_slice(), &[1.0, -2.0]);
    }

    #[test]
    fn nan_is_detected_like_inf() {
        let scaler = GradScaler::default();
        let nan = FlatTensor::from_vec(vec![f32::NAN]);
        assert_eq!(scaler.check_overflow([&nan]), OverflowStatus::Overflow);
        let fine = FlatTensor::from_vec(vec![1.0]);
        assert_eq!(scaler.check_overflow([&fine]), OverflowStatus::Finite);
        assert_eq!(scaler.check_overflow(std::iter::empty()), OverflowStatus::Finite);
    }

    #[test]
    fn clipping_caps_the_global_norm() {
        let mut grads =
            vec![FlatTensor::from_vec(vec![3.0, 0.0]), FlatTensor::from_vec(vec![0.0, 4.0])];
        let norm = clip_global_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let new_norm: f32 =
            (grads.iter().map(FlatTensor::sum_of_squares).sum::<f64>() as f32).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-3);
    }

    #[test]
    fn clipping_leaves_small_gradients_untouched() {
        let mut grads = vec![FlatTensor::from_vec(vec![0.1, 0.2])];
        let before = grads[0].clone();
        let norm = clip_global_norm(&mut grads, 10.0);
        assert!(norm < 1.0);
        assert_eq!(grads[0], before);
        // Non-positive max_norm disables clipping entirely.
        let norm2 = clip_global_norm(&mut grads, 0.0);
        assert_eq!(grads[0], before);
        assert!((norm2 - norm).abs() < 1e-9);
    }

    proptest! {
        /// After clipping, the global norm never exceeds max_norm (within tolerance).
        #[test]
        fn clipped_norm_is_bounded(
            values in proptest::collection::vec(-100.0f32..100.0, 1..64),
            max_norm in 0.1f32..10.0,
        ) {
            let mut grads = vec![FlatTensor::from_vec(values)];
            clip_global_norm(&mut grads, max_norm);
            let norm = grads[0].l2_norm();
            prop_assert!(norm <= max_norm * 1.001 + 1e-4);
        }

        /// The scaler always stays within [min_scale, max_scale].
        #[test]
        fn scaler_stays_in_bounds(events in proptest::collection::vec(proptest::bool::ANY, 0..200)) {
            let mut scaler = GradScaler::new(65536.0).with_growth_interval(2);
            for overflow in events {
                let status = if overflow { OverflowStatus::Overflow } else { OverflowStatus::Finite };
                scaler.update(status);
                prop_assert!(scaler.scale() >= 1.0);
                prop_assert!(scaler.scale() <= 2.0f32.powi(24));
            }
        }
    }
}
