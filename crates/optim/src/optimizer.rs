//! The [`Optimizer`] front-end: hyper-parameters, auxiliary-state layout and
//! per-parameter byte accounting used by the traffic model.

use crate::kernels;
use parcore::ParExecutor;
use serde::{Deserialize, Serialize};
use tensorlib::FlatTensor;

/// Which optimizer algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Adam (the paper's default).
    Adam,
    /// AdamW (decoupled weight decay).
    AdamW,
    /// SGD with momentum.
    SgdMomentum,
    /// AdaGrad.
    AdaGrad,
}

impl OptimizerKind {
    /// Number of auxiliary FP32 state tensors (excluding the FP32 master copy
    /// of the parameters): 2 for Adam/AdamW (momentum + variance), 1 for SGD
    /// momentum and AdaGrad.
    pub fn num_aux(self) -> usize {
        match self {
            OptimizerKind::Adam | OptimizerKind::AdamW => 2,
            OptimizerKind::SgdMomentum | OptimizerKind::AdaGrad => 1,
        }
    }

    /// Names of the auxiliary state tensors, in the order `init_aux` creates them.
    pub fn aux_names(self) -> &'static [&'static str] {
        match self {
            OptimizerKind::Adam | OptimizerKind::AdamW => &["momentum", "variance"],
            OptimizerKind::SgdMomentum => &["momentum"],
            OptimizerKind::AdaGrad => &["variance"],
        }
    }

    /// Bytes of optimizer state stored per parameter: FP32 master copy plus
    /// every auxiliary FP32 tensor. Adam: 12 B = "6M" in the paper's unit
    /// where M is the FP16 parameter size (2 B per parameter).
    pub fn state_bytes_per_param(self) -> usize {
        4 * (1 + self.num_aux())
    }

    /// The paper's "xM" traffic coefficient for the optimizer states (the
    /// FP16 parameter size being 1M = 2 bytes/param). Adam: 6, SGD/AdaGrad: 4.
    pub fn state_size_in_m(self) -> f64 {
        self.state_bytes_per_param() as f64 / 2.0
    }
}

/// Hyper-parameters shared by every optimizer (unused fields are ignored by
/// optimizers that do not need them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Learning rate.
    pub lr: f32,
    /// Adam/AdamW beta1.
    pub beta1: f32,
    /// Adam/AdamW beta2.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// AdamW decoupled weight decay.
    pub weight_decay: f32,
    /// SGD momentum coefficient.
    pub momentum: f32,
}

impl Default for HyperParams {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.01, momentum: 0.9 }
    }
}

/// An optimizer: an algorithm choice plus its hyper-parameters.
///
/// The optimizer itself is stateless; auxiliary state lives in tensors owned
/// by the caller (`init_aux`), because in storage-offloaded training that
/// state physically lives on the SSD / CSD, not with the optimizer object.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Optimizer {
    kind: OptimizerKind,
    hp: HyperParams,
}

impl Optimizer {
    /// Creates an optimizer of the given kind with the given hyper-parameters.
    pub fn new(kind: OptimizerKind, hp: HyperParams) -> Self {
        Self { kind, hp }
    }

    /// Adam with default hyper-parameters (the paper's default configuration).
    pub fn adam_default() -> Self {
        Self::new(OptimizerKind::Adam, HyperParams::default())
    }

    /// The algorithm this optimizer runs.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// The hyper-parameters.
    pub fn hyper_params(&self) -> HyperParams {
        self.hp
    }

    /// Allocates zero-initialised auxiliary state for `num_params` parameters.
    pub fn init_aux(&self, num_params: usize) -> Vec<FlatTensor> {
        (0..self.kind.num_aux()).map(|_| FlatTensor::zeros(num_params)).collect()
    }

    /// Applies one update step in place.
    ///
    /// `t` is the 1-based global step count (used by Adam bias correction).
    ///
    /// # Panics
    ///
    /// Panics if `aux` does not contain exactly [`OptimizerKind::num_aux`]
    /// tensors of the same length as `params`, or if `grads` has a different
    /// length, or if `t == 0` for Adam-family optimizers.
    pub fn step(&self, params: &mut [f32], grads: &FlatTensor, aux: &mut [FlatTensor], t: u64) {
        self.par_step_chunked(&ParExecutor::serial(), 1, params, grads, aux, t);
    }

    /// Applies one update step in place, fanning contiguous chunks of the
    /// parameter range out across `pool` (one chunk per worker). Updates too
    /// small to amortise the thread spawns run inline automatically
    /// ([`ParExecutor::workers_for`]). Bit-identical to [`Optimizer::step`]
    /// for every executor.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Optimizer::step`].
    pub fn par_step(
        &self,
        pool: &ParExecutor,
        params: &mut [f32],
        grads: &FlatTensor,
        aux: &mut [FlatTensor],
        t: u64,
    ) {
        self.par_step_chunked(pool, pool.workers_for(params.len()), params, grads, aux, t);
    }

    /// Applies one update step in place with an explicit chunk count
    /// (independent of the executor's worker count). Bit-identical to
    /// [`Optimizer::step`] for every `(pool, num_chunks)` combination.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Optimizer::step`], or if
    /// `num_chunks` is zero.
    pub fn par_step_chunked(
        &self,
        pool: &ParExecutor,
        num_chunks: usize,
        params: &mut [f32],
        grads: &FlatTensor,
        aux: &mut [FlatTensor],
        t: u64,
    ) {
        assert_eq!(
            aux.len(),
            self.kind.num_aux(),
            "expected {} auxiliary tensors for {:?}",
            self.kind.num_aux(),
            self.kind
        );
        let hp = &self.hp;
        match self.kind {
            OptimizerKind::Adam => {
                let (m, v) = aux.split_at_mut(1);
                kernels::par_adam_step(
                    pool,
                    num_chunks,
                    params,
                    m[0].as_mut_slice(),
                    v[0].as_mut_slice(),
                    grads.as_slice(),
                    hp.lr,
                    hp.beta1,
                    hp.beta2,
                    hp.eps,
                    t,
                );
            }
            OptimizerKind::AdamW => {
                let (m, v) = aux.split_at_mut(1);
                kernels::par_adamw_step(
                    pool,
                    num_chunks,
                    params,
                    m[0].as_mut_slice(),
                    v[0].as_mut_slice(),
                    grads.as_slice(),
                    hp.lr,
                    hp.beta1,
                    hp.beta2,
                    hp.eps,
                    hp.weight_decay,
                    t,
                );
            }
            OptimizerKind::SgdMomentum => {
                kernels::par_sgd_momentum_step(
                    pool,
                    num_chunks,
                    params,
                    aux[0].as_mut_slice(),
                    grads.as_slice(),
                    hp.lr,
                    hp.momentum,
                );
            }
            OptimizerKind::AdaGrad => {
                kernels::par_adagrad_step(
                    pool,
                    num_chunks,
                    params,
                    aux[0].as_mut_slice(),
                    grads.as_slice(),
                    hp.lr,
                    hp.eps,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_layout_matches_algorithm() {
        assert_eq!(OptimizerKind::Adam.num_aux(), 2);
        assert_eq!(OptimizerKind::AdamW.num_aux(), 2);
        assert_eq!(OptimizerKind::SgdMomentum.num_aux(), 1);
        assert_eq!(OptimizerKind::AdaGrad.num_aux(), 1);
        assert_eq!(OptimizerKind::Adam.aux_names(), &["momentum", "variance"]);
        assert_eq!(OptimizerKind::AdaGrad.aux_names(), &["variance"]);
    }

    #[test]
    fn state_bytes_match_the_papers_6m_accounting() {
        // Adam: FP32 master + momentum + variance = 12 B/param = 6M where M = 2 B/param.
        assert_eq!(OptimizerKind::Adam.state_bytes_per_param(), 12);
        assert_eq!(OptimizerKind::Adam.state_size_in_m(), 6.0);
        // SGD / AdaGrad: 3/4 of Adam's state (paper Section VII-F).
        assert_eq!(OptimizerKind::SgdMomentum.state_size_in_m(), 4.0);
        assert_eq!(OptimizerKind::AdaGrad.state_size_in_m(), 4.0);
    }

    #[test]
    fn optimizer_step_dispatch_matches_kernels() {
        let hp = HyperParams { lr: 0.1, ..HyperParams::default() };
        let opt = Optimizer::new(OptimizerKind::Adam, hp);
        assert_eq!(opt.kind(), OptimizerKind::Adam);
        assert_eq!(opt.hyper_params(), hp);
        let mut params = FlatTensor::from_vec(vec![0.0, 0.0]);
        let mut aux = opt.init_aux(2);
        assert_eq!(aux.len(), 2);
        let grads = FlatTensor::from_vec(vec![1.0, -1.0]);
        opt.step(params.as_mut_slice(), &grads, &mut aux, 1);

        let mut expect = vec![0.0f32, 0.0];
        let mut m = vec![0.0f32; 2];
        let mut v = vec![0.0f32; 2];
        crate::kernels::adam_step(
            &mut expect,
            &mut m,
            &mut v,
            &[1.0, -1.0],
            0.1,
            hp.beta1,
            hp.beta2,
            hp.eps,
            1,
        );
        assert_eq!(params.as_slice(), expect.as_slice());
    }

    #[test]
    #[should_panic(expected = "expected 2 auxiliary tensors")]
    fn wrong_aux_count_panics() {
        let opt = Optimizer::adam_default();
        let mut params = FlatTensor::zeros(2);
        let grads = FlatTensor::zeros(2);
        let mut aux = vec![FlatTensor::zeros(2)];
        opt.step(params.as_mut_slice(), &grads, &mut aux, 1);
    }

    #[test]
    fn default_constructor_is_adam() {
        assert_eq!(Optimizer::adam_default().kind(), OptimizerKind::Adam);
    }

    #[test]
    fn par_step_is_bit_identical_to_step_for_every_optimizer() {
        let n = 2053;
        let grads = FlatTensor::from_fn(n, |i| ((i as f32) * 0.13).sin() * 0.1);
        let cpus = ParExecutor::current().num_threads();
        for kind in [
            OptimizerKind::Adam,
            OptimizerKind::AdamW,
            OptimizerKind::SgdMomentum,
            OptimizerKind::AdaGrad,
        ] {
            let opt = Optimizer::new(kind, HyperParams::default());
            let mut serial = FlatTensor::from_fn(n, |i| (i as f32) * 1e-3);
            let mut serial_aux = opt.init_aux(n);
            for t in 1..=2 {
                opt.step(serial.as_mut_slice(), &grads, &mut serial_aux, t);
            }
            for chunks in [1usize, 2, 7, cpus.max(2)] {
                let pool = ParExecutor::new(4);
                let mut par = FlatTensor::from_fn(n, |i| (i as f32) * 1e-3);
                let mut par_aux = opt.init_aux(n);
                for t in 1..=2 {
                    opt.par_step_chunked(
                        &pool,
                        chunks,
                        par.as_mut_slice(),
                        &grads,
                        &mut par_aux,
                        t,
                    );
                }
                assert_eq!(par.as_slice(), serial.as_slice(), "{kind:?} chunks={chunks}");
                for (a, b) in par_aux.iter().zip(&serial_aux) {
                    assert_eq!(a.as_slice(), b.as_slice(), "{kind:?} aux chunks={chunks}");
                }
            }
            // par_step (chunks = worker count) is the same dispatch.
            let pool = ParExecutor::new(2);
            let mut par = FlatTensor::from_fn(n, |i| (i as f32) * 1e-3);
            let mut par_aux = opt.init_aux(n);
            for t in 1..=2 {
                opt.par_step(&pool, par.as_mut_slice(), &grads, &mut par_aux, t);
            }
            assert_eq!(par.as_slice(), serial.as_slice(), "{kind:?} par_step");
        }
    }
}
