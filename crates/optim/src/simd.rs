//! SIMD bodies for the optimizer update kernels.
//!
//! Each vector body mirrors the scalar loop in `kernels.rs` **operation by
//! operation** — same multiplies, adds, divides and square roots in the same
//! order. Every one of those operations is IEEE-754 correctly rounded in
//! both scalar and packed form, so the vector results are bit-identical to
//! the scalar reference for every input, which the property suites assert
//! (including NaN, infinity and subnormal gradients). Ragged tails run the
//! scalar body on the remainder.
//!
//! This is the only module in the crate allowed to use `unsafe` (for
//! `std::arch` intrinsics); the crate root remains `deny(unsafe_code)`.
#![allow(unsafe_code)]

use crate::kernels::{adagrad_scalar, adam_scalar, adamw_scalar, sgd_momentum_scalar};
use tensorlib::KernelPath;

/// Dispatched Adam body (bias factors precomputed by the caller).
#[allow(clippy::too_many_arguments)]
pub(crate) fn adam(
    path: KernelPath,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    bias1: f32,
    bias2: f32,
) {
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is asserted by the public `_with` wrappers.
        KernelPath::Avx2 => {
            return unsafe {
                x86::adam_avx2(
                    params, momentum, variance, grads, lr, beta1, beta2, eps, bias1, bias2,
                )
            };
        }
        KernelPath::Sse2 => {
            return unsafe {
                x86::adam_sse2(
                    params, momentum, variance, grads, lr, beta1, beta2, eps, bias1, bias2,
                )
            };
        }
        KernelPath::Scalar => {}
    }
    let _ = path;
    adam_scalar(params, momentum, variance, grads, lr, beta1, beta2, eps, bias1, bias2);
}

/// Dispatched AdamW body (bias factors precomputed by the caller).
#[allow(clippy::too_many_arguments)]
pub(crate) fn adamw(
    path: KernelPath,
    params: &mut [f32],
    momentum: &mut [f32],
    variance: &mut [f32],
    grads: &[f32],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    bias1: f32,
    bias2: f32,
) {
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is asserted by the public `_with` wrappers.
        KernelPath::Avx2 => {
            return unsafe {
                x86::adamw_avx2(
                    params,
                    momentum,
                    variance,
                    grads,
                    lr,
                    beta1,
                    beta2,
                    eps,
                    weight_decay,
                    bias1,
                    bias2,
                )
            };
        }
        KernelPath::Sse2 => {
            return unsafe {
                x86::adamw_sse2(
                    params,
                    momentum,
                    variance,
                    grads,
                    lr,
                    beta1,
                    beta2,
                    eps,
                    weight_decay,
                    bias1,
                    bias2,
                )
            };
        }
        KernelPath::Scalar => {}
    }
    let _ = path;
    adamw_scalar(
        params,
        momentum,
        variance,
        grads,
        lr,
        beta1,
        beta2,
        eps,
        weight_decay,
        bias1,
        bias2,
    );
}

/// Dispatched SGD-with-momentum body.
pub(crate) fn sgd_momentum(
    path: KernelPath,
    params: &mut [f32],
    momentum_buf: &mut [f32],
    grads: &[f32],
    lr: f32,
    momentum: f32,
) {
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is asserted by the public `_with` wrappers.
        KernelPath::Avx2 => {
            return unsafe { x86::sgd_momentum_avx2(params, momentum_buf, grads, lr, momentum) };
        }
        KernelPath::Sse2 => {
            return unsafe { x86::sgd_momentum_sse2(params, momentum_buf, grads, lr, momentum) };
        }
        KernelPath::Scalar => {}
    }
    let _ = path;
    sgd_momentum_scalar(params, momentum_buf, grads, lr, momentum);
}

/// Dispatched AdaGrad body.
pub(crate) fn adagrad(
    path: KernelPath,
    params: &mut [f32],
    accumulator: &mut [f32],
    grads: &[f32],
    lr: f32,
    eps: f32,
) {
    debug_assert!(path.is_available());
    #[cfg(target_arch = "x86_64")]
    match path {
        // Safety: availability is asserted by the public `_with` wrappers.
        KernelPath::Avx2 => {
            return unsafe { x86::adagrad_avx2(params, accumulator, grads, lr, eps) };
        }
        KernelPath::Sse2 => {
            return unsafe { x86::adagrad_sse2(params, accumulator, grads, lr, eps) };
        }
        KernelPath::Scalar => {}
    }
    let _ = path;
    adagrad_scalar(params, accumulator, grads, lr, eps);
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Generates the AVX2 (8-wide, `_mm256_*`) and SSE2 (4-wide, `_mm_*`)
    /// variants of one update kernel from a single body template. `$set1`,
    /// `$load`, `$store` etc. are the width-specific intrinsics; the
    /// arithmetic inside each generated function is written once, so the two
    /// widths cannot drift apart.
    macro_rules! update_kernels {
        ($feature:literal, $width:literal, $suffix:ident,
         $vec:ty, $set1:ident, $load:ident, $store:ident,
         $mul:ident, $add:ident, $sub:ident, $div:ident, $sqrt:ident) => {
            paste_adam!(
                $feature, $width, $suffix, $vec, $set1, $load, $store, $mul, $add, $sub, $div,
                $sqrt
            );
        };
    }

    /// One Adam-family macro expansion per width. (Kept as a separate macro
    /// so `update_kernels!` stays readable above.)
    macro_rules! paste_adam {
        ($feature:literal, $width:literal, $suffix:ident,
         $vec:ty, $set1:ident, $load:ident, $store:ident,
         $mul:ident, $add:ident, $sub:ident, $div:ident, $sqrt:ident) => {
            mod $suffix {
                use super::*;

                /// # Safety
                ///
                /// Caller guarantees the target feature; slice lengths are
                /// equal (asserted by the public wrappers).
                #[allow(clippy::too_many_arguments)]
                #[target_feature(enable = $feature)]
                pub(crate) unsafe fn adam(
                    params: &mut [f32],
                    momentum: &mut [f32],
                    variance: &mut [f32],
                    grads: &[f32],
                    lr: f32,
                    beta1: f32,
                    beta2: f32,
                    eps: f32,
                    bias1: f32,
                    bias2: f32,
                ) {
                    let n = params.len();
                    let (b1, omb1) = ($set1(beta1), $set1(1.0 - beta1));
                    let (b2, omb2) = ($set1(beta2), $set1(1.0 - beta2));
                    let (vb1, vb2) = ($set1(bias1), $set1(bias2));
                    let (vlr, veps) = ($set1(lr), $set1(eps));
                    let mut i = 0;
                    while i + $width <= n {
                        let g = $load(grads.as_ptr().add(i));
                        // m = beta1 * m + (1 - beta1) * g
                        let m = $add($mul(b1, $load(momentum.as_ptr().add(i))), $mul(omb1, g));
                        $store(momentum.as_mut_ptr().add(i), m);
                        // v = beta2 * v + ((1 - beta2) * g) * g  — same
                        // association as the scalar expression.
                        let v =
                            $add($mul(b2, $load(variance.as_ptr().add(i))), $mul($mul(omb2, g), g));
                        $store(variance.as_mut_ptr().add(i), v);
                        let m_hat = $div(m, vb1);
                        let v_hat = $div(v, vb2);
                        // p -= (lr * m_hat) / (sqrt(v_hat) + eps)
                        let step = $div($mul(vlr, m_hat), $add($sqrt(v_hat), veps));
                        let p = $sub($load(params.as_ptr().add(i)), step);
                        $store(params.as_mut_ptr().add(i), p);
                        i += $width;
                    }
                    adam_scalar(
                        &mut params[i..],
                        &mut momentum[i..],
                        &mut variance[i..],
                        &grads[i..],
                        lr,
                        beta1,
                        beta2,
                        eps,
                        bias1,
                        bias2,
                    );
                }

                /// # Safety
                ///
                /// Caller guarantees the target feature; slice lengths are
                /// equal (asserted by the public wrappers).
                #[allow(clippy::too_many_arguments)]
                #[target_feature(enable = $feature)]
                pub(crate) unsafe fn adamw(
                    params: &mut [f32],
                    momentum: &mut [f32],
                    variance: &mut [f32],
                    grads: &[f32],
                    lr: f32,
                    beta1: f32,
                    beta2: f32,
                    eps: f32,
                    weight_decay: f32,
                    bias1: f32,
                    bias2: f32,
                ) {
                    let n = params.len();
                    let (b1, omb1) = ($set1(beta1), $set1(1.0 - beta1));
                    let (b2, omb2) = ($set1(beta2), $set1(1.0 - beta2));
                    let (vb1, vb2) = ($set1(bias1), $set1(bias2));
                    let (vlr, veps, vwd) = ($set1(lr), $set1(eps), $set1(weight_decay));
                    let mut i = 0;
                    while i + $width <= n {
                        let g = $load(grads.as_ptr().add(i));
                        let m = $add($mul(b1, $load(momentum.as_ptr().add(i))), $mul(omb1, g));
                        $store(momentum.as_mut_ptr().add(i), m);
                        let v =
                            $add($mul(b2, $load(variance.as_ptr().add(i))), $mul($mul(omb2, g), g));
                        $store(variance.as_mut_ptr().add(i), v);
                        let m_hat = $div(m, vb1);
                        let v_hat = $div(v, vb2);
                        // p -= lr * (m_hat / (sqrt(v_hat) + eps) + wd * p)
                        let p_old = $load(params.as_ptr().add(i));
                        let inner = $add($div(m_hat, $add($sqrt(v_hat), veps)), $mul(vwd, p_old));
                        let p = $sub(p_old, $mul(vlr, inner));
                        $store(params.as_mut_ptr().add(i), p);
                        i += $width;
                    }
                    adamw_scalar(
                        &mut params[i..],
                        &mut momentum[i..],
                        &mut variance[i..],
                        &grads[i..],
                        lr,
                        beta1,
                        beta2,
                        eps,
                        weight_decay,
                        bias1,
                        bias2,
                    );
                }

                /// # Safety
                ///
                /// Caller guarantees the target feature; slice lengths are
                /// equal (asserted by the public wrappers).
                #[target_feature(enable = $feature)]
                pub(crate) unsafe fn sgd_momentum(
                    params: &mut [f32],
                    momentum_buf: &mut [f32],
                    grads: &[f32],
                    lr: f32,
                    momentum: f32,
                ) {
                    let n = params.len();
                    let (vmom, vlr) = ($set1(momentum), $set1(lr));
                    let mut i = 0;
                    while i + $width <= n {
                        let g = $load(grads.as_ptr().add(i));
                        // buf = momentum * buf + g
                        let buf = $add($mul(vmom, $load(momentum_buf.as_ptr().add(i))), g);
                        $store(momentum_buf.as_mut_ptr().add(i), buf);
                        // p -= lr * buf
                        let p = $sub($load(params.as_ptr().add(i)), $mul(vlr, buf));
                        $store(params.as_mut_ptr().add(i), p);
                        i += $width;
                    }
                    sgd_momentum_scalar(
                        &mut params[i..],
                        &mut momentum_buf[i..],
                        &grads[i..],
                        lr,
                        momentum,
                    );
                }

                /// # Safety
                ///
                /// Caller guarantees the target feature; slice lengths are
                /// equal (asserted by the public wrappers).
                #[target_feature(enable = $feature)]
                pub(crate) unsafe fn adagrad(
                    params: &mut [f32],
                    accumulator: &mut [f32],
                    grads: &[f32],
                    lr: f32,
                    eps: f32,
                ) {
                    let n = params.len();
                    let (vlr, veps) = ($set1(lr), $set1(eps));
                    let mut i = 0;
                    while i + $width <= n {
                        let g = $load(grads.as_ptr().add(i));
                        // acc += g * g
                        let acc = $add($load(accumulator.as_ptr().add(i)), $mul(g, g));
                        $store(accumulator.as_mut_ptr().add(i), acc);
                        // p -= (lr * g) / (sqrt(acc) + eps)
                        let step = $div($mul(vlr, g), $add($sqrt(acc), veps));
                        let p = $sub($load(params.as_ptr().add(i)), step);
                        $store(params.as_mut_ptr().add(i), p);
                        i += $width;
                    }
                    adagrad_scalar(&mut params[i..], &mut accumulator[i..], &grads[i..], lr, eps);
                }
            }
        };
    }

    update_kernels!(
        "avx2",
        8,
        wide8,
        __m256,
        _mm256_set1_ps,
        _mm256_loadu_ps,
        _mm256_storeu_ps,
        _mm256_mul_ps,
        _mm256_add_ps,
        _mm256_sub_ps,
        _mm256_div_ps,
        _mm256_sqrt_ps
    );
    update_kernels!(
        "sse2",
        4,
        wide4,
        __m128,
        _mm_set1_ps,
        _mm_loadu_ps,
        _mm_storeu_ps,
        _mm_mul_ps,
        _mm_add_ps,
        _mm_sub_ps,
        _mm_div_ps,
        _mm_sqrt_ps
    );

    pub(super) use wide4::{
        adagrad as adagrad_sse2, adam as adam_sse2, adamw as adamw_sse2,
        sgd_momentum as sgd_momentum_sse2,
    };
    pub(super) use wide8::{
        adagrad as adagrad_avx2, adam as adam_avx2, adamw as adamw_avx2,
        sgd_momentum as sgd_momentum_avx2,
    };
}
