//! Topology graph, shortest-path routing and installation into a simulation.

use crate::error::FabricError;
use serde::{Deserialize, Serialize};
use simkit::{LinkId, Simulation};
use std::collections::VecDeque;

/// Identifier of a node (endpoint or switch) in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of an edge (PCIe link) in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(usize);

impl EdgeId {
    /// Raw index of the edge.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The role a node plays in the platform. Roles are informational: routing
/// treats every node identically, but platform builders and engines use the
/// role to find "the GPU" or "the third SSD".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Host root complex / host memory attachment point.
    Host,
    /// A GPU endpoint.
    Gpu,
    /// A PCIe switch (expansion chassis switch or CSD-internal switch).
    Switch,
    /// The NVMe SSD controller endpoint of a (Smart)SSD.
    SsdPort,
    /// The FPGA endpoint of a computational storage device.
    FpgaPort,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    name: String,
    kind: NodeKind,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Edge {
    a: NodeId,
    b: NodeId,
    bandwidth: f64,
    name: String,
    failed: bool,
}

/// An undirected graph of PCIe endpoints, switches and links.
///
/// Links are undirected and full-duplex is *not* modeled separately: the paper's
/// contention effects (shared uplink saturation) are per-direction dominated by
/// one direction at a time in each training phase, so a single shared capacity
/// per link is sufficient and conservative. Direction-specific device limits
/// (SSD read vs. write bandwidth) are modeled by the `ssd` crate as additional
/// media links appended to flow paths.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given display name and role.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        self.nodes.push(Node { name: name.into(), kind });
        self.adjacency.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Connects two nodes with a link of `bandwidth` bytes per second.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownNode`] if either node id is invalid and
    /// [`FabricError::InvalidEdge`] for self-loops or non-positive bandwidth.
    pub fn connect(&mut self, a: NodeId, b: NodeId, bandwidth: f64) -> Result<EdgeId, FabricError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(FabricError::InvalidEdge { message: "self loop".into() });
        }
        if !(bandwidth.is_finite() && bandwidth > 0.0) {
            return Err(FabricError::InvalidEdge {
                message: format!("bandwidth must be positive, got {bandwidth}"),
            });
        }
        let name = format!("{}<->{}", self.nodes[a.0].name, self.nodes[b.0].name);
        self.edges.push(Edge { a, b, bandwidth, name, failed: false });
        let id = EdgeId(self.edges.len() - 1);
        self.adjacency[a.0].push((b, id));
        self.adjacency[b.0].push((a, id));
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Display name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.nodes[node.0].name
    }

    /// Role of a node.
    pub fn node_kind(&self, node: NodeId) -> NodeKind {
        self.nodes[node.0].kind
    }

    /// Bandwidth of an edge in bytes per second (per direction).
    pub fn edge_bandwidth(&self, edge: EdgeId) -> f64 {
        self.edges[edge.0].bandwidth
    }

    /// The two endpoints of an edge, in the order they were connected.
    pub fn edge_endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[edge.0];
        (e.a, e.b)
    }

    /// Degrades an edge to `factor` of its current bandwidth (a flaky or
    /// retrained PCIe link running at a lower rate). Returns the new
    /// bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidEdge`] for an unknown edge or a factor
    /// outside `(0, 1]`.
    pub fn degrade_edge(&mut self, edge: EdgeId, factor: f64) -> Result<f64, FabricError> {
        self.check_edge(edge)?;
        if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) {
            return Err(FabricError::InvalidEdge {
                message: format!("degradation factor must be in (0, 1], got {factor}"),
            });
        }
        let e = &mut self.edges[edge.0];
        e.bandwidth *= factor;
        Ok(e.bandwidth)
    }

    /// Marks an edge as failed: routing refuses to cross it until
    /// [`Topology::restore_edge`] brings it back.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidEdge`] for an unknown edge.
    pub fn fail_edge(&mut self, edge: EdgeId) -> Result<(), FabricError> {
        self.check_edge(edge)?;
        self.edges[edge.0].failed = true;
        Ok(())
    }

    /// Restores a failed edge.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidEdge`] for an unknown edge.
    pub fn restore_edge(&mut self, edge: EdgeId) -> Result<(), FabricError> {
        self.check_edge(edge)?;
        self.edges[edge.0].failed = false;
        Ok(())
    }

    /// Whether an edge is currently failed.
    pub fn edge_is_failed(&self, edge: EdgeId) -> bool {
        self.edges.get(edge.0).is_some_and(|e| e.failed)
    }

    /// The edge directly connecting two nodes, if one exists (the first such
    /// edge in creation order). Engines use this to identify a specific
    /// physical link — e.g. the shared host uplink — so its per-stage
    /// occupancy can be queried from a simulation timeline.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adjacency.get(a.0)?.iter().find(|&&(next, _)| next == b).map(|&(_, edge)| edge)
    }

    /// All nodes of a given kind, in creation order.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == kind)
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Shortest path (fewest hops) between two nodes, as a list of edges.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownNode`] for invalid ids and
    /// [`FabricError::NoRoute`] if the nodes are disconnected.
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<Vec<EdgeId>, FabricError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Ok(Vec::new());
        }
        let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        visited[from.0] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                break;
            }
            for &(next, edge) in &self.adjacency[cur.0] {
                if !visited[next.0] && !self.edges[edge.index()].failed {
                    visited[next.0] = true;
                    prev[next.0] = Some((cur, edge));
                    queue.push_back(next);
                }
            }
        }
        if !visited[to.0] {
            // Distinguish a genuinely disconnected pair from one that is only
            // unreachable because links are down.
            if self.reachable_ignoring_failures(from, to) {
                return Err(FabricError::Partitioned { from: from.0, to: to.0 });
            }
            return Err(FabricError::NoRoute { from: from.0, to: to.0 });
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, e) = prev[cur.0].expect("BFS predecessor must exist on reached node");
            path.push(e);
            cur = p;
        }
        path.reverse();
        Ok(path)
    }

    /// Registers every edge of the topology in `sim` and returns the mapping
    /// used to translate routes into flow paths.
    ///
    /// PCIe links are full duplex, so each edge is installed as *two* shared
    /// capacities — one per direction. [`InstalledFabric::path`] picks the
    /// directional capacity matching the traversal direction, so traffic
    /// flowing host→SSD does not contend with traffic flowing SSD→host on the
    /// same physical link, while same-direction transfers do share it.
    pub fn install(&self, sim: &mut Simulation) -> InstalledFabric {
        let links = self
            .edges
            .iter()
            .map(|e| {
                let fwd = sim.add_link(format!("{}:fwd", e.name), e.bandwidth);
                let rev = sim.add_link(format!("{}:rev", e.name), e.bandwidth);
                (fwd, rev)
            })
            .collect();
        InstalledFabric { topology: self.clone(), links }
    }

    fn check_node(&self, node: NodeId) -> Result<(), FabricError> {
        if node.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(FabricError::UnknownNode { index: node.0 })
        }
    }

    fn check_edge(&self, edge: EdgeId) -> Result<(), FabricError> {
        if edge.0 < self.edges.len() {
            Ok(())
        } else {
            Err(FabricError::InvalidEdge { message: format!("unknown edge id {}", edge.0) })
        }
    }

    /// BFS reachability over the *healthy* graph (failed edges included).
    fn reachable_ignoring_failures(&self, from: NodeId, to: NodeId) -> bool {
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = VecDeque::new();
        visited[from.0] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                return true;
            }
            for &(next, _) in &self.adjacency[cur.0] {
                if !visited[next.0] {
                    visited[next.0] = true;
                    queue.push_back(next);
                }
            }
        }
        false
    }
}

/// A topology whose edges have been registered with a [`Simulation`].
///
/// Produced by [`Topology::install`]; translates endpoint pairs into
/// [`simkit::LinkId`] paths suitable for [`simkit::FlowSpec`]. Every edge is
/// backed by two directional capacities (PCIe full duplex).
#[derive(Debug, Clone)]
pub struct InstalledFabric {
    topology: Topology,
    links: Vec<(LinkId, LinkId)>,
}

impl InstalledFabric {
    /// The shortest-hop path between two endpoints as simulation link ids,
    /// using the directional capacity of each traversed edge that matches the
    /// `from` → `to` direction.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::route`].
    pub fn path(&self, from: NodeId, to: NodeId) -> Result<Vec<LinkId>, FabricError> {
        let edges = self.topology.route(from, to)?;
        let mut current = from;
        let mut path = Vec::with_capacity(edges.len());
        for edge in edges {
            let (a, b) = self.topology.edge_endpoints(edge);
            let (fwd, rev) = self.links[edge.index()];
            if current == a {
                path.push(fwd);
                current = b;
            } else {
                path.push(rev);
                current = a;
            }
        }
        Ok(path)
    }

    /// The pair of directional simulation links backing a topology edge
    /// (`(a→b, b→a)` in the order the edge was connected).
    pub fn links_of_edge(&self, edge: EdgeId) -> (LinkId, LinkId) {
        self.links[edge.index()]
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_topology() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::SsdPort);
        t.connect(a, b, 10.0).unwrap();
        t.connect(b, c, 5.0).unwrap();
        (t, a, b, c)
    }

    #[test]
    fn route_finds_multi_hop_path() {
        let (t, a, _b, c) = line_topology();
        let path = t.route(a, c).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(t.edge_bandwidth(path[0]), 10.0);
        assert_eq!(t.edge_bandwidth(path[1]), 5.0);
    }

    #[test]
    fn route_to_self_is_empty() {
        let (t, a, _, _) = line_topology();
        assert!(t.route(a, a).unwrap().is_empty());
    }

    #[test]
    fn route_prefers_fewest_hops() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::Switch);
        let c = t.add_node("c", NodeKind::Switch);
        let d = t.add_node("d", NodeKind::SsdPort);
        // Long path a-b-c-d and a direct shortcut a-d.
        t.connect(a, b, 1.0).unwrap();
        t.connect(b, c, 1.0).unwrap();
        t.connect(c, d, 1.0).unwrap();
        let direct = t.connect(a, d, 1.0).unwrap();
        assert_eq!(t.route(a, d).unwrap(), vec![direct]);
    }

    #[test]
    fn disconnected_nodes_have_no_route() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::SsdPort);
        assert_eq!(t.route(a, b), Err(FabricError::NoRoute { from: 0, to: 1 }));
    }

    #[test]
    fn invalid_edges_are_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a", NodeKind::Host);
        let b = t.add_node("b", NodeKind::SsdPort);
        assert!(matches!(t.connect(a, a, 1.0), Err(FabricError::InvalidEdge { .. })));
        assert!(matches!(t.connect(a, b, 0.0), Err(FabricError::InvalidEdge { .. })));
        assert!(matches!(t.connect(a, b, f64::NAN), Err(FabricError::InvalidEdge { .. })));
        assert!(matches!(
            t.connect(a, NodeId(77), 1.0),
            Err(FabricError::UnknownNode { index: 77 })
        ));
    }

    #[test]
    fn degraded_edges_lose_bandwidth_but_keep_routing() {
        let (mut t, a, b, c) = line_topology();
        let ab = t.edge_between(a, b).unwrap();
        let new_bw = t.degrade_edge(ab, 0.25).unwrap();
        assert_eq!(new_bw, 2.5);
        assert_eq!(t.edge_bandwidth(ab), 2.5);
        assert_eq!(t.route(a, c).unwrap().len(), 2);
        // Invalid factors and unknown edges are rejected.
        assert!(matches!(t.degrade_edge(ab, 0.0), Err(FabricError::InvalidEdge { .. })));
        assert!(matches!(t.degrade_edge(ab, 1.5), Err(FabricError::InvalidEdge { .. })));
        assert!(matches!(t.degrade_edge(EdgeId(99), 0.5), Err(FabricError::InvalidEdge { .. })));
    }

    #[test]
    fn failed_links_partition_the_fabric_until_restored() {
        let (mut t, a, b, c) = line_topology();
        let bc = t.edge_between(b, c).unwrap();
        t.fail_edge(bc).unwrap();
        assert!(t.edge_is_failed(bc));
        // a<->b still routes; a<->c is partitioned (not "no route": the
        // healthy fabric connects them).
        assert!(t.route(a, b).is_ok());
        assert_eq!(t.route(a, c), Err(FabricError::Partitioned { from: 0, to: 2 }));
        t.restore_edge(bc).unwrap();
        assert!(!t.edge_is_failed(bc));
        assert_eq!(t.route(a, c).unwrap().len(), 2);
        // A pair with no physical connection still reports NoRoute.
        let mut t2 = Topology::new();
        let x = t2.add_node("x", NodeKind::Host);
        let y = t2.add_node("y", NodeKind::SsdPort);
        assert_eq!(t2.route(x, y), Err(FabricError::NoRoute { from: 0, to: 1 }));
        assert!(matches!(t2.fail_edge(EdgeId(0)), Err(FabricError::InvalidEdge { .. })));
        assert!(!t2.edge_is_failed(EdgeId(0)));
    }

    #[test]
    fn edge_between_finds_direct_links_only() {
        let (t, a, b, c) = line_topology();
        let ab = t.edge_between(a, b).expect("direct edge");
        assert_eq!(t.edge_endpoints(ab), (a, b));
        // Symmetric lookup, no transitive routes, out-of-range ids are None.
        assert_eq!(t.edge_between(b, a), Some(ab));
        assert_eq!(t.edge_between(a, c), None);
        assert_eq!(t.edge_between(a, NodeId(99)), None);
        assert_eq!(t.edge_between(NodeId(99), a), None);
    }

    #[test]
    fn nodes_of_kind_filters_by_role() {
        let (t, _a, b, c) = line_topology();
        assert_eq!(t.nodes_of_kind(NodeKind::Switch), vec![b]);
        assert_eq!(t.nodes_of_kind(NodeKind::SsdPort), vec![c]);
        assert_eq!(t.nodes_of_kind(NodeKind::Gpu), Vec::<NodeId>::new());
        assert_eq!(t.node_kind(b), NodeKind::Switch);
        assert_eq!(t.node_name(c), "c");
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn installed_fabric_maps_edges_to_directional_links() {
        let (t, a, _b, c) = line_topology();
        let mut sim = Simulation::new();
        let inst = t.install(&mut sim);
        // Two directional capacities per edge.
        assert_eq!(sim.link_count(), 4);
        let down = inst.path(a, c).unwrap();
        let up = inst.path(c, a).unwrap();
        assert_eq!(down.len(), 2);
        assert_eq!(up.len(), 2);
        assert_eq!(sim.link_bandwidth(down[0]), 10.0);
        assert_eq!(sim.link_bandwidth(down[1]), 5.0);
        // Opposite directions of the same edge use different capacities.
        assert!(down.iter().all(|l| !up.contains(l)));
        assert_eq!(inst.topology().node_count(), 3);
        assert_eq!(t.edge_endpoints(t.route(a, c).unwrap()[0]).0, a);
    }

    #[test]
    fn opposite_direction_flows_do_not_contend() {
        let (t, a, _b, c) = line_topology();
        let mut sim = Simulation::new();
        let inst = t.install(&mut sim);
        let down = sim.flow(simkit::FlowSpec::new(inst.path(a, c).unwrap(), 50.0));
        let up = sim.flow(simkit::FlowSpec::new(inst.path(c, a).unwrap(), 50.0));
        let tl = sim.run().unwrap();
        // Each direction gets the full 5 B/s of the bottleneck edge.
        assert!((tl.finish_time(down) - 10.0).abs() < 1e-9);
        assert!((tl.finish_time(up) - 10.0).abs() < 1e-9);
    }
}
