//! # fabric — PCIe interconnect topology model
//!
//! Smart-Infinity's performance story is, at its core, a topology story: the
//! *shared* system interconnect between the host and its storage devices
//! saturates, while the *private* links inside each computational storage
//! device (CSD) scale linearly with the number of devices. This crate models
//! exactly that: a graph of PCIe endpoints and switches connected by links
//! with finite bandwidth, shortest-path routing between endpoints, and an
//! installer that materialises every link as a shared-bandwidth
//! [`simkit`] link so the discrete-event engine can simulate contention.
//!
//! Two preset platform builders reproduce the paper's environments:
//!
//! * [`PlatformSpec::default_smart_infinity`] — Fig. 2: GPU on the
//!   host root complex, storage devices (plain SSDs or SmartSSD-style CSDs)
//!   behind a PCIe expansion switch whose uplink is the shared interconnect.
//! * [`PlatformSpec::congested_multi_gpu`] — Fig. 17(a): GPUs are
//!   plugged into the *same* expansion switch as the CSDs and share its
//!   uplink.
//!
//! # Example
//!
//! ```
//! use fabric::{Topology, NodeKind};
//! use simkit::Simulation;
//!
//! # fn main() -> Result<(), fabric::FabricError> {
//! let mut topo = Topology::new();
//! let host = topo.add_node("host", NodeKind::Host);
//! let sw = topo.add_node("switch", NodeKind::Switch);
//! let ssd = topo.add_node("ssd0", NodeKind::SsdPort);
//! topo.connect(host, sw, 16e9)?;
//! topo.connect(sw, ssd, 3.3e9)?;
//!
//! let mut sim = Simulation::new();
//! let installed = topo.install(&mut sim);
//! let path = installed.path(host, ssd)?;
//! assert_eq!(path.len(), 2); // host->switch, switch->ssd
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod presets;
mod topology;

pub use error::FabricError;
pub use presets::{LinkRates, Platform, PlatformSpec, StorageKind, TopologyKind};
pub use topology::{EdgeId, InstalledFabric, NodeId, NodeKind, Topology};

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{FlowSpec, Simulation};

    /// End-to-end: a host talking to four SSDs behind a switch is limited by
    /// the uplink once the per-device links exceed it.
    #[test]
    fn shared_uplink_limits_aggregate_bandwidth() {
        let mut topo = Topology::new();
        let host = topo.add_node("host", NodeKind::Host);
        let sw = topo.add_node("sw", NodeKind::Switch);
        topo.connect(host, sw, 10.0).unwrap();
        let mut ssds = Vec::new();
        for i in 0..4 {
            let ssd = topo.add_node(format!("ssd{i}"), NodeKind::SsdPort);
            topo.connect(sw, ssd, 6.0).unwrap();
            ssds.push(ssd);
        }
        let mut sim = Simulation::new();
        let inst = topo.install(&mut sim);
        let mut _tasks = Vec::new();
        for &ssd in &ssds {
            let path = inst.path(host, ssd).unwrap();
            _tasks.push(sim.flow(FlowSpec::new(path, 25.0)));
        }
        let tl = sim.run().unwrap();
        // Aggregate demand is 4*6=24 > uplink 10, so total 100 bytes at 10 B/s.
        assert!((tl.makespan() - 10.0).abs() < 1e-6);
    }

    /// P2P traffic inside one switch does not cross the uplink.
    #[test]
    fn p2p_inside_switch_does_not_use_uplink() {
        let mut topo = Topology::new();
        let host = topo.add_node("host", NodeKind::Host);
        let sw = topo.add_node("sw", NodeKind::Switch);
        let up = topo.connect(host, sw, 1.0).unwrap();
        let a = topo.add_node("fpga", NodeKind::FpgaPort);
        let b = topo.add_node("ssd", NodeKind::SsdPort);
        topo.connect(sw, a, 8.0).unwrap();
        topo.connect(sw, b, 8.0).unwrap();
        let path = topo.route(a, b).unwrap();
        assert_eq!(path.len(), 2);
        assert!(!path.contains(&up));
    }
}
