//! Preset platform topologies matching the paper's experimental environments.

use crate::error::FabricError;
use crate::topology::{NodeId, NodeKind, Topology};
use serde::{Deserialize, Serialize};

/// Bandwidths of the standard links in the platform, in bytes per second.
///
/// Defaults follow the paper's environment (Fig. 2 and Table II): a 16 GB/s
/// shared host interconnect, PCIe Gen3 x4 device links (~3.938 GB/s raw,
/// ~3.2 GB/s effective) and a wide expansion-switch fabric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkRates {
    /// Host root complex <-> expansion switch (the shared system interconnect).
    pub host_uplink: f64,
    /// Expansion switch <-> storage device (plain SSD) or CSD package uplink.
    pub device_link: f64,
    /// CSD internal switch <-> NVMe SSD controller (PCIe Gen3 x4).
    pub csd_internal_ssd: f64,
    /// CSD internal switch <-> FPGA (PCIe Gen3 x4).
    pub csd_internal_fpga: f64,
    /// Host root complex <-> GPU (default topology; x16 link).
    pub gpu_link: f64,
}

impl Default for LinkRates {
    fn default() -> Self {
        Self {
            host_uplink: 16.0e9,
            device_link: 3.2e9,
            csd_internal_ssd: 3.0e9,
            csd_internal_fpga: 3.0e9,
            gpu_link: 16.0e9,
        }
    }
}

/// Whether devices behind the expansion switch are plain SSDs or SmartSSD-style CSDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// Plain NVMe SSD (used by the ZeRO-Infinity + RAID0 baseline).
    PlainSsd,
    /// Computational storage device: internal switch + NVMe SSD + FPGA.
    Csd,
}

/// Where GPUs attach relative to the storage devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Paper default (Fig. 2): GPUs on the host root complex, devices behind
    /// the expansion switch.
    Default,
    /// Congested (Fig. 17a): GPUs share the expansion switch — and therefore
    /// its uplink — with the storage devices.
    Congested,
}

/// Declarative description of a platform to build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Number of storage devices behind the expansion switch.
    pub num_devices: usize,
    /// Plain SSDs or CSDs.
    pub storage: StorageKind,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Default or congested GPU placement.
    pub topology: TopologyKind,
    /// Link bandwidths.
    pub rates: LinkRates,
}

impl PlatformSpec {
    /// The paper's default environment: one GPU on the host, `num_devices`
    /// devices of `storage` kind behind a PCIe expansion switch.
    pub fn default_smart_infinity(num_devices: usize, storage: StorageKind) -> Self {
        Self {
            num_devices,
            storage,
            num_gpus: 1,
            topology: TopologyKind::Default,
            rates: LinkRates::default(),
        }
    }

    /// The congested multi-GPU topology of Fig. 17(a): `num_gpus` GPUs share
    /// the expansion switch uplink with `num_devices` CSDs.
    pub fn congested_multi_gpu(num_devices: usize, num_gpus: usize) -> Self {
        Self {
            num_devices,
            storage: StorageKind::Csd,
            num_gpus,
            topology: TopologyKind::Congested,
            rates: LinkRates::default(),
        }
    }

    /// Overrides the link rates.
    pub fn with_rates(mut self, rates: LinkRates) -> Self {
        self.rates = rates;
        self
    }

    /// Builds the topology described by this spec.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::InvalidEdge`] if any configured bandwidth is
    /// non-positive.
    pub fn build(&self) -> Result<Platform, FabricError> {
        let mut topo = Topology::new();
        let host = topo.add_node("host", NodeKind::Host);
        let expansion = topo.add_node("expansion-switch", NodeKind::Switch);
        topo.connect(host, expansion, self.rates.host_uplink)?;

        let mut gpus = Vec::with_capacity(self.num_gpus);
        for g in 0..self.num_gpus {
            let gpu = topo.add_node(format!("gpu{g}"), NodeKind::Gpu);
            match self.topology {
                TopologyKind::Default => topo.connect(host, gpu, self.rates.gpu_link)?,
                TopologyKind::Congested => topo.connect(expansion, gpu, self.rates.gpu_link)?,
            };
            gpus.push(gpu);
        }

        let mut devices = Vec::with_capacity(self.num_devices);
        for d in 0..self.num_devices {
            match self.storage {
                StorageKind::PlainSsd => {
                    let ssd = topo.add_node(format!("ssd{d}"), NodeKind::SsdPort);
                    topo.connect(expansion, ssd, self.rates.device_link)?;
                    devices.push(DevicePorts { ssd, fpga: None, internal_switch: None });
                }
                StorageKind::Csd => {
                    let internal = topo.add_node(format!("csd{d}-switch"), NodeKind::Switch);
                    topo.connect(expansion, internal, self.rates.device_link)?;
                    let ssd = topo.add_node(format!("csd{d}-ssd"), NodeKind::SsdPort);
                    topo.connect(internal, ssd, self.rates.csd_internal_ssd)?;
                    let fpga = topo.add_node(format!("csd{d}-fpga"), NodeKind::FpgaPort);
                    topo.connect(internal, fpga, self.rates.csd_internal_fpga)?;
                    devices.push(DevicePorts {
                        ssd,
                        fpga: Some(fpga),
                        internal_switch: Some(internal),
                    });
                }
            }
        }

        Ok(Platform { spec: self.clone(), topology: topo, host, expansion, gpus, devices })
    }
}

/// The attachment points of one storage device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DevicePorts {
    /// NVMe SSD controller endpoint.
    pub ssd: NodeId,
    /// FPGA endpoint (CSDs only).
    pub fpga: Option<NodeId>,
    /// CSD internal switch (CSDs only).
    pub internal_switch: Option<NodeId>,
}

/// A built platform: the topology plus named attachment points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Platform {
    /// The spec this platform was built from.
    pub spec: PlatformSpec,
    /// The underlying PCIe topology graph.
    pub topology: Topology,
    /// Host root complex node.
    pub host: NodeId,
    /// Expansion switch node.
    pub expansion: NodeId,
    /// GPU endpoints.
    pub gpus: Vec<NodeId>,
    /// Storage device attachment points, one entry per device.
    pub devices: Vec<DevicePorts>,
}

impl Platform {
    /// Number of storage devices in the platform.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Whether the devices are CSDs (have FPGA ports).
    pub fn is_csd(&self) -> bool {
        self.spec.storage == StorageKind::Csd
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{FlowSpec, Simulation};

    #[test]
    fn default_platform_counts_nodes_correctly() {
        let platform =
            PlatformSpec::default_smart_infinity(4, StorageKind::PlainSsd).build().unwrap();
        assert_eq!(platform.num_devices(), 4);
        assert!(!platform.is_csd());
        assert_eq!(platform.gpus.len(), 1);
        // host + expansion + gpu + 4 ssds
        assert_eq!(platform.topology.node_count(), 7);
        assert!(platform.devices.iter().all(|d| d.fpga.is_none()));
    }

    #[test]
    fn csd_platform_has_fpga_ports_and_internal_switches() {
        let platform = PlatformSpec::default_smart_infinity(3, StorageKind::Csd).build().unwrap();
        assert!(platform.is_csd());
        assert_eq!(platform.num_devices(), 3);
        for dev in &platform.devices {
            assert!(dev.fpga.is_some());
            assert!(dev.internal_switch.is_some());
        }
        // host + expansion + gpu + 3*(switch+ssd+fpga)
        assert_eq!(platform.topology.node_count(), 12);
    }

    #[test]
    fn csd_internal_p2p_avoids_the_shared_uplink() {
        let platform = PlatformSpec::default_smart_infinity(2, StorageKind::Csd).build().unwrap();
        let dev = &platform.devices[0];
        let p2p = platform.topology.route(dev.ssd, dev.fpga.unwrap()).unwrap();
        // ssd -> internal switch -> fpga: 2 hops, never leaving the CSD.
        assert_eq!(p2p.len(), 2);
        let host_path = platform.topology.route(platform.host, dev.ssd).unwrap();
        // host -> expansion -> internal switch -> ssd.
        assert_eq!(host_path.len(), 3);
        // The uplink edge (host<->expansion) must not be in the P2P path.
        assert!(!p2p.contains(&host_path[0]));
    }

    #[test]
    fn congested_topology_places_gpus_behind_expansion_switch() {
        let platform = PlatformSpec::congested_multi_gpu(2, 3).build().unwrap();
        assert_eq!(platform.gpus.len(), 3);
        for &gpu in &platform.gpus {
            let path = platform.topology.route(platform.host, gpu).unwrap();
            // host -> expansion -> gpu (2 hops, crosses the shared uplink)
            assert_eq!(path.len(), 2);
        }
    }

    #[test]
    fn default_topology_gpu_traffic_does_not_contend_with_storage_uplink() {
        // In the default topology GPU<->host and host<->SSD traffic use disjoint links.
        let platform =
            PlatformSpec::default_smart_infinity(1, StorageKind::PlainSsd).build().unwrap();
        let mut sim = Simulation::new();
        let inst = platform.topology.install(&mut sim);
        let gpu_path = inst.path(platform.host, platform.gpus[0]).unwrap();
        let ssd_path = inst.path(platform.host, platform.devices[0].ssd).unwrap();
        let gpu_flow = sim.flow(FlowSpec::new(gpu_path, 16e9));
        let ssd_flow = sim.flow(FlowSpec::new(ssd_path, 3.2e9));
        let tl = sim.run().unwrap();
        // Both take ~1 s; if they contended the makespan would be ~2 s.
        assert!((tl.finish_time(gpu_flow) - 1.0).abs() < 0.05);
        assert!((tl.finish_time(ssd_flow) - 1.0).abs() < 0.05);
    }

    #[test]
    fn rates_can_be_overridden() {
        let rates = LinkRates { host_uplink: 1.0e9, ..LinkRates::default() };
        let platform = PlatformSpec::default_smart_infinity(1, StorageKind::PlainSsd)
            .with_rates(rates)
            .build()
            .unwrap();
        let uplink = platform.topology.route(platform.host, platform.expansion).unwrap();
        assert_eq!(platform.topology.edge_bandwidth(uplink[0]), 1.0e9);
    }
}
