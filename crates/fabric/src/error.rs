//! Error type for topology construction and routing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a PCIe topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// A node identifier did not belong to this topology.
    UnknownNode {
        /// The offending node index.
        index: usize,
    },
    /// No path exists between the two endpoints.
    NoRoute {
        /// Source node index.
        from: usize,
        /// Destination node index.
        to: usize,
    },
    /// An edge was declared with a non-positive bandwidth or between identical nodes.
    InvalidEdge {
        /// Description of the problem.
        message: String,
    },
    /// The endpoints are connected in the healthy fabric, but every path
    /// between them crosses a failed link: the fabric is partitioned until
    /// the link is restored.
    Partitioned {
        /// Source node index.
        from: usize,
        /// Destination node index.
        to: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownNode { index } => write!(f, "unknown node id {index}"),
            FabricError::NoRoute { from, to } => {
                write!(f, "no route between node {from} and node {to}")
            }
            FabricError::InvalidEdge { message } => write!(f, "invalid edge: {message}"),
            FabricError::Partitioned { from, to } => write!(
                f,
                "fabric partitioned: every path from node {from} to node {to} crosses a failed link"
            ),
        }
    }
}

impl Error for FabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(FabricError::UnknownNode { index: 3 }.to_string(), "unknown node id 3");
        assert!(FabricError::NoRoute { from: 0, to: 9 }.to_string().contains("no route"));
        assert!(FabricError::InvalidEdge { message: "self loop".into() }
            .to_string()
            .contains("self loop"));
        assert!(FabricError::Partitioned { from: 1, to: 4 }.to_string().contains("partitioned"));
    }
}
