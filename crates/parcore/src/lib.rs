//! # parcore — the shard-parallel execution backend
//!
//! Smart-Infinity's speedup comes from running every parameter shard's
//! optimizer update concurrently on its own CSD (paper Section IV). The
//! functional layer of this reproduction executes the same kernels in host
//! Rust; this crate gives those kernels the matching execution model: a
//! scoped thread pool ([`ParExecutor`]) with a **deterministic chunk→worker
//! assignment**, so that results are bit-identical regardless of how many
//! workers run them.
//!
//! Design constraints:
//!
//! * **No external dependencies** — built purely on [`std::thread::scope`],
//!   so the offline workspace needs no rayon/crossbeam.
//! * **Determinism** — work items are indexed; every combinator returns (or
//!   applies) results in item order, and the chunk boundaries produced by
//!   [`chunk_bounds`] depend only on `(len, num_chunks)`, never on thread
//!   scheduling. Kernels built on top of this are bit-identical to their
//!   serial counterparts (asserted by the `optim` and `gradcomp` test suites).
//! * **Zero persistent state** — scoped threads are spawned per call; there is
//!   no global pool to poison or configure. For the kernel sizes this
//!   workspace runs (hundreds of thousands to millions of elements) the spawn
//!   cost is noise next to the kernel body.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Minimum elements a worker must receive before fanning a kernel out pays
/// for its scoped-thread spawns. At ~1 GElem/s for an element-wise optimizer
/// step, 2^16 elements is ~60 µs of work per worker — comfortably above the
/// tens of microseconds a spawn/join round trip costs — so anything smaller
/// runs inline.
pub const MIN_ELEMS_PER_WORKER: usize = 1 << 16;

/// A parallel executor: a target worker count for scoped-thread dispatch.
///
/// The executor is deliberately tiny and `Copy`: it is threaded through the
/// device models (which are `Clone`) and carries no handles, only the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParExecutor {
    num_threads: usize,
}

impl Default for ParExecutor {
    /// Defaults to the machine's available parallelism.
    fn default() -> Self {
        Self::current()
    }
}

impl ParExecutor {
    /// An executor with exactly `num_threads` workers (clamped to at least 1).
    pub fn new(num_threads: usize) -> Self {
        Self { num_threads: num_threads.max(1) }
    }

    /// A serial executor: every combinator runs inline on the caller thread.
    pub fn serial() -> Self {
        Self { num_threads: 1 }
    }

    /// An executor sized to the machine's available parallelism.
    pub fn current() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
    }

    /// The configured worker count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Whether this executor runs everything inline.
    pub fn is_serial(&self) -> bool {
        self.num_threads == 1
    }

    /// Worker count actually worth using for an element-wise kernel over
    /// `len` elements: capped so every worker gets at least
    /// [`MIN_ELEMS_PER_WORKER`] elements (1 means "run inline"). Kernels
    /// built on parcore are bit-identical for every worker count, so this
    /// only tunes wall-clock, never results.
    pub fn workers_for(&self, len: usize) -> usize {
        self.num_threads.min(len / MIN_ELEMS_PER_WORKER).max(1)
    }

    /// Applies `f` to every item, in parallel, and returns the results **in
    /// item order**. Item `i` is assigned to worker `i % num_threads`
    /// (deterministic round-robin); `f` receives the item index and the item.
    ///
    /// With a serial executor (or a single item) this runs inline with no
    /// thread spawns.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.num_threads <= 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let workers = self.num_threads.min(n);
        // Deal items round-robin into per-worker queues, remembering each
        // item's original index so results can be re-assembled in order.
        let mut queues: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push((i, item));
        }
        let f = &f;
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = queues
                .into_iter()
                .map(|queue| {
                    scope.spawn(move || {
                        queue
                            .into_iter()
                            .map(|(i, item)| (i, f(i, item)))
                            .collect::<Vec<(usize, R)>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("parcore worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots.into_iter().map(|r| r.expect("every item produces a result")).collect()
    }

    /// Applies `f` to every item in parallel, discarding results. Same
    /// deterministic assignment as [`ParExecutor::map`]; items typically carry
    /// `&mut` chunk views into caller-owned buffers.
    pub fn for_each<T, F>(&self, items: Vec<T>, f: F)
    where
        T: Send,
        F: Fn(usize, T) + Sync,
    {
        self.map(items, f);
    }
}

/// Splits `0..len` into `num_chunks` contiguous ranges whose sizes differ by
/// at most one element (the first `len % num_chunks` chunks get the extra).
/// Depends only on the arguments, never on scheduling; empty trailing chunks
/// are omitted, so fewer than `num_chunks` ranges are returned when
/// `len < num_chunks`.
///
/// # Panics
///
/// Panics if `num_chunks` is zero.
pub fn chunk_bounds(len: usize, num_chunks: usize) -> Vec<Range<usize>> {
    assert!(num_chunks > 0, "chunk count must be positive");
    let chunks = num_chunks.min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Splits a mutable slice into the chunks described by [`chunk_bounds`],
/// preserving order. The returned sub-slices tile the input exactly.
///
/// # Panics
///
/// Panics if `num_chunks` is zero.
pub fn split_mut<T>(slice: &mut [T], num_chunks: usize) -> Vec<&mut [T]> {
    let bounds = chunk_bounds(slice.len(), num_chunks);
    let mut out = Vec::with_capacity(bounds.len());
    let mut rest = slice;
    for range in &bounds {
        let (head, tail) = rest.split_at_mut(range.len());
        out.push(head);
        rest = tail;
    }
    out
}

/// Splits an immutable slice into the chunks described by [`chunk_bounds`].
///
/// # Panics
///
/// Panics if `num_chunks` is zero.
pub fn split_ref<T>(slice: &[T], num_chunks: usize) -> Vec<&[T]> {
    chunk_bounds(slice.len(), num_chunks).into_iter().map(|r| &slice[r]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_tile_the_range_evenly() {
        assert_eq!(chunk_bounds(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_bounds(9, 3), vec![0..3, 3..6, 6..9]);
        assert_eq!(chunk_bounds(2, 5), vec![0..1, 1..2]);
        assert_eq!(chunk_bounds(0, 4), Vec::<Range<usize>>::new());
        // Sizes differ by at most one and cover everything, for many shapes.
        for len in [0usize, 1, 7, 64, 1023] {
            for chunks in [1usize, 2, 3, 7, 16] {
                let bounds = chunk_bounds(len, chunks);
                let total: usize = bounds.iter().map(Range::len).sum();
                assert_eq!(total, len, "len={len} chunks={chunks}");
                if let (Some(max), Some(min)) =
                    (bounds.iter().map(Range::len).max(), bounds.iter().map(Range::len).min())
                {
                    assert!(max - min <= 1, "len={len} chunks={chunks}");
                }
                let mut expected = 0;
                for b in &bounds {
                    assert_eq!(b.start, expected);
                    expected = b.end;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk count must be positive")]
    fn zero_chunks_panics() {
        chunk_bounds(10, 0);
    }

    #[test]
    fn split_mut_and_ref_match_chunk_bounds() {
        let mut data: Vec<u32> = (0..11).collect();
        let chunks = split_mut(&mut data, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[3], &[9, 10]);
        let views = split_ref(&data, 4);
        assert_eq!(views.iter().map(|c| c.len()).sum::<usize>(), 11);
        let empty: Vec<&mut [u32]> = split_mut(&mut [][..], 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn map_preserves_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..23).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let pool = ParExecutor::new(threads);
            let out = pool.map(items.clone(), |i, x| {
                assert_eq!(i, x, "index must match the item's position");
                x * 2
            });
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mutates_disjoint_chunks_in_parallel() {
        let mut data = vec![0u64; 1000];
        let pool = ParExecutor::new(4);
        let chunks = split_mut(&mut data, 7);
        pool.for_each(chunks, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        // Chunk 0 of 1000/7 has 143 elements, every one stamped with index+1.
        assert_eq!(data[0], 1);
        assert_eq!(data[999], 7);
        assert!(data.iter().all(|&v| v > 0));
    }

    #[test]
    fn workers_for_scales_with_the_kernel_size() {
        let pool = ParExecutor::new(4);
        assert_eq!(pool.workers_for(0), 1);
        assert_eq!(pool.workers_for(1000), 1, "small kernels run inline");
        assert_eq!(pool.workers_for(MIN_ELEMS_PER_WORKER), 1);
        assert_eq!(pool.workers_for(2 * MIN_ELEMS_PER_WORKER), 2);
        assert_eq!(pool.workers_for(100 * MIN_ELEMS_PER_WORKER), 4, "capped at the pool size");
        assert_eq!(ParExecutor::serial().workers_for(usize::MAX), 1);
    }

    #[test]
    fn executor_constructors_and_accessors() {
        assert!(ParExecutor::serial().is_serial());
        assert_eq!(ParExecutor::serial().num_threads(), 1);
        assert_eq!(ParExecutor::new(0).num_threads(), 1, "zero clamps to one");
        assert_eq!(ParExecutor::new(6).num_threads(), 6);
        assert!(!ParExecutor::new(2).is_serial());
        assert!(ParExecutor::current().num_threads() >= 1);
        assert_eq!(ParExecutor::default(), ParExecutor::current());
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = ParExecutor::new(8);
        let out = pool.map(vec![41], |i, x| {
            assert_eq!(i, 0);
            x + 1
        });
        assert_eq!(out, vec![42]);
        let empty: Vec<i32> = pool.map(Vec::<i32>::new(), |_, x| x);
        assert!(empty.is_empty());
    }
}
