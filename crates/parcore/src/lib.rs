//! # parcore — the shard-parallel execution backend
//!
//! Smart-Infinity's speedup comes from running every parameter shard's
//! optimizer update concurrently on its own CSD (paper Section IV). The
//! functional layer of this reproduction executes the same kernels in host
//! Rust; this crate gives those kernels the matching execution model: a
//! scoped thread pool ([`ParExecutor`]) with a **deterministic chunk→worker
//! assignment**, so that results are bit-identical regardless of how many
//! workers run them.
//!
//! Design constraints:
//!
//! * **No external dependencies** — built purely on [`std::thread::scope`]
//!   and [`std::sync::Mutex`], so the offline workspace needs no
//!   rayon/crossbeam.
//! * **Determinism of results** — work items are indexed; every combinator
//!   returns (or applies) results **in item order** regardless of which
//!   worker ran them, and the chunk boundaries produced by [`chunk_bounds`]
//!   and [`weighted_chunk_bounds`] depend only on their arguments, never on
//!   thread scheduling. Kernels built on top of this are bit-identical to
//!   their serial counterparts (asserted by the `optim` and `gradcomp` test
//!   suites) in **both** execution modes.
//! * **Size-aware scheduling** — by default items are work-stolen
//!   ([`ExecMode::WorkStealing`]): a worker that finishes its own queue takes
//!   items from the back of a busy sibling's queue, so one skewed shard no
//!   longer serializes the whole dispatch. [`ExecMode::Deterministic`]
//!   preserves the fixed item→worker assignment for scheduling-sensitive
//!   suites; results are identical either way.
//! * **Zero persistent state** — scoped threads are spawned per call; there is
//!   no global pool to poison or configure. For the kernel sizes this
//!   workspace runs (hundreds of thousands to millions of elements) the spawn
//!   cost is noise next to the kernel body.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Mutex;

/// Minimum elements a worker must receive before fanning a kernel out pays
/// for its scoped-thread spawns. At ~1 GElem/s for an element-wise optimizer
/// step, 2^16 elements is ~60 µs of work per worker — comfortably above the
/// tens of microseconds a spawn/join round trip costs — so anything smaller
/// runs inline.
pub const MIN_ELEMS_PER_WORKER: usize = 1 << 16;

/// How an executor assigns work items to its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Size-aware default: items start round-robin (or heaviest-first under
    /// [`ParExecutor::map_weighted`]) in per-worker queues, and an idle
    /// worker steals from the back of a busy sibling's queue. A skewed item
    /// costs one worker, not the whole dispatch.
    #[default]
    WorkStealing,
    /// Fixed item→worker assignment (item `i` on worker `i % workers`), with
    /// no stealing: which thread runs which item depends only on the item
    /// count and worker count. Results are identical to
    /// [`ExecMode::WorkStealing`] — combinators return results in item order
    /// in both modes — this mode only pins the *schedule*, for
    /// bit-equivalence suites that want scheduling held constant too.
    Deterministic,
}

/// A parallel executor: a target worker count plus a scheduling policy for
/// scoped-thread dispatch.
///
/// The executor is deliberately tiny and `Copy`: it is threaded through the
/// device models (which are `Clone`) and carries no handles, only the policy.
/// The machine's CPU count is sampled once at construction so
/// [`ParExecutor::workers_for`] can clamp fan-out without re-querying the OS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParExecutor {
    num_threads: usize,
    num_cpus: usize,
    mode: ExecMode,
}

impl Default for ParExecutor {
    /// Defaults to the machine's available parallelism.
    fn default() -> Self {
        Self::current()
    }
}

/// The machine's available parallelism (at least 1).
fn detect_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

impl ParExecutor {
    /// A work-stealing executor with exactly `num_threads` workers (clamped
    /// to at least 1).
    pub fn new(num_threads: usize) -> Self {
        Self { num_threads: num_threads.max(1), num_cpus: detect_cpus(), mode: ExecMode::default() }
    }

    /// An executor with `num_threads` workers and a fixed item→worker
    /// schedule ([`ExecMode::Deterministic`]) — for suites that pin the
    /// schedule while asserting bit-equivalence.
    pub fn deterministic(num_threads: usize) -> Self {
        Self::new(num_threads).with_mode(ExecMode::Deterministic)
    }

    /// A serial executor: every combinator runs inline on the caller thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// An executor sized to the machine's available parallelism.
    pub fn current() -> Self {
        Self::new(detect_cpus())
    }

    /// This executor with a different scheduling mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// This executor pretending the machine has `num_cpus` CPUs (clamped to
    /// at least 1). Only [`ParExecutor::workers_for`]'s oversubscription
    /// clamp consults the value; tests use it to exercise the clamp on
    /// machines with a different core count.
    pub fn with_assumed_cpus(mut self, num_cpus: usize) -> Self {
        self.num_cpus = num_cpus.max(1);
        self
    }

    /// The configured worker count.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// The CPU count sampled at construction (or assumed via
    /// [`ParExecutor::with_assumed_cpus`]).
    pub fn num_cpus(&self) -> usize {
        self.num_cpus
    }

    /// The scheduling mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Whether this executor runs everything inline.
    pub fn is_serial(&self) -> bool {
        self.num_threads == 1
    }

    /// Worker count actually worth using for an element-wise kernel over
    /// `len` elements: capped so every worker gets at least
    /// [`MIN_ELEMS_PER_WORKER`] elements, and clamped to the machine's CPU
    /// count — a worker count above `num_cpus` oversubscribes the cores and
    /// only adds spawn and context-switch cost (1 means "run inline").
    /// Kernels built on parcore are bit-identical for every worker count, so
    /// this only tunes wall-clock, never results.
    pub fn workers_for(&self, len: usize) -> usize {
        self.num_threads.min(self.num_cpus).min(len / MIN_ELEMS_PER_WORKER).max(1)
    }

    /// Applies `f` to every item, in parallel, and returns the results **in
    /// item order**. `f` receives the item index and the item. Under
    /// [`ExecMode::Deterministic`] item `i` is pinned to worker
    /// `i % workers`; under [`ExecMode::WorkStealing`] that round-robin deal
    /// is only the starting point and idle workers steal. The returned
    /// vector is identical in both modes.
    ///
    /// With a serial executor (or a single item) this runs inline with no
    /// thread spawns.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.num_threads <= 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let workers = self.num_threads.min(n);
        // Deal items round-robin into per-worker queues, remembering each
        // item's original index so results can be re-assembled in order.
        let mut queues: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back((i, item));
        }
        self.run(queues, n, &f)
    }

    /// [`ParExecutor::map`] with per-item wall-clock timing: returns
    /// `(result, seconds)` for every item, in item order. The clock wraps
    /// only the closure body, on whichever worker ran it — queueing and
    /// re-assembly are excluded — which is what a service wants for per-job
    /// run-time telemetry. Results are identical to [`ParExecutor::map`];
    /// only the timings vary run to run.
    pub fn map_timed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<(R, f64)>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map(items, move |i, item| {
            let start = std::time::Instant::now();
            let result = f(i, item);
            (result, start.elapsed().as_secs_f64())
        })
    }

    /// [`ParExecutor::map`] with a per-item cost estimate: `weights[i]` is
    /// the relative cost of item `i` (any monotone proxy works — element
    /// count, byte size). Items are assigned heaviest-first to the least
    /// loaded worker (LPT), so a few skewed shards no longer serialize the
    /// dispatch even before stealing kicks in. Results are returned in item
    /// order and are identical to [`ParExecutor::map`] for every mode,
    /// weight vector and worker count.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != items.len()`.
    pub fn map_weighted<T, R, F>(&self, items: Vec<T>, weights: &[usize], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        assert_eq!(n, weights.len(), "weight length mismatch");
        if self.num_threads <= 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let workers = self.num_threads.min(n);
        // Longest-processing-time deal: heaviest item first, each to the
        // currently least-loaded queue (ties broken by lowest worker id, so
        // the deal depends only on the weights).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
        let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
        let mut queues: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut loads = vec![0usize; workers];
        for i in order {
            let w = (0..workers).min_by_key(|&w| (loads[w], w)).expect("workers >= 1");
            loads[w] += weights[i];
            queues[w].push_back((i, items[i].take().expect("each item dealt once")));
        }
        self.run(queues, n, &f)
    }

    /// Applies `f` to every item in parallel, discarding results. Same
    /// scheduling as [`ParExecutor::map`]; items typically carry `&mut`
    /// chunk views into caller-owned buffers.
    pub fn for_each<T, F>(&self, items: Vec<T>, f: F)
    where
        T: Send,
        F: Fn(usize, T) + Sync,
    {
        self.map(items, f);
    }

    /// [`ParExecutor::for_each`] with per-item cost estimates (see
    /// [`ParExecutor::map_weighted`]).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != items.len()`.
    pub fn for_each_weighted<T, F>(&self, items: Vec<T>, weights: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, T) + Sync,
    {
        self.map_weighted(items, weights, f);
    }

    /// Runs pre-dealt per-worker queues to completion and re-assembles the
    /// results in item order. Under [`ExecMode::WorkStealing`] the queues are
    /// shared behind mutexes: a worker drains its own queue from the front
    /// and, when empty, steals from the back of its siblings' queues. Under
    /// [`ExecMode::Deterministic`] each worker owns its queue outright.
    fn run<T, R, F>(&self, queues: Vec<VecDeque<(usize, T)>>, n: usize, f: &F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let workers = queues.len();
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        match self.mode {
            ExecMode::Deterministic => {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = queues
                        .into_iter()
                        .map(|queue| {
                            scope.spawn(move || {
                                queue
                                    .into_iter()
                                    .map(|(i, item)| (i, f(i, item)))
                                    .collect::<Vec<(usize, R)>>()
                            })
                        })
                        .collect();
                    for handle in handles {
                        for (i, result) in handle.join().expect("parcore worker panicked") {
                            slots[i] = Some(result);
                        }
                    }
                });
            }
            ExecMode::WorkStealing => {
                let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
                    queues.into_iter().map(Mutex::new).collect();
                let queues = &queues;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            scope.spawn(move || {
                                let mut done: Vec<(usize, R)> = Vec::new();
                                loop {
                                    // Own queue first (front), then steal from
                                    // the back of the first busy sibling. No
                                    // job is ever re-enqueued, so one full
                                    // empty scan means the dispatch is done.
                                    // Each lock is taken and released in its
                                    // own statement — never two at once.
                                    let mut job = queues[w]
                                        .lock()
                                        .expect("parcore queue poisoned")
                                        .pop_front();
                                    if job.is_none() {
                                        for off in 1..workers {
                                            job = queues[(w + off) % workers]
                                                .lock()
                                                .expect("parcore queue poisoned")
                                                .pop_back();
                                            if job.is_some() {
                                                break;
                                            }
                                        }
                                    }
                                    match job {
                                        Some((i, item)) => done.push((i, f(i, item))),
                                        None => break,
                                    }
                                }
                                done
                            })
                        })
                        .collect();
                    for handle in handles {
                        for (i, result) in handle.join().expect("parcore worker panicked") {
                            slots[i] = Some(result);
                        }
                    }
                });
            }
        }
        slots.into_iter().map(|r| r.expect("every item produces a result")).collect()
    }
}

/// Splits `0..len` into `num_chunks` contiguous ranges whose sizes differ by
/// at most one element (the first `len % num_chunks` chunks get the extra).
/// Depends only on the arguments, never on scheduling; empty trailing chunks
/// are omitted, so fewer than `num_chunks` ranges are returned when
/// `len < num_chunks`.
///
/// # Panics
///
/// Panics if `num_chunks` is zero.
pub fn chunk_bounds(len: usize, num_chunks: usize) -> Vec<Range<usize>> {
    assert!(num_chunks > 0, "chunk count must be positive");
    let chunks = num_chunks.min(len.max(1));
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Splits `0..weights.len()` into at most `num_chunks` contiguous ranges of
/// approximately equal **total weight** (`weights[i]` is the relative cost of
/// item `i`). Greedy cumulative partition: chunk `c` closes once the running
/// weight reaches `total · (c+1) / num_chunks`, except that enough items are
/// always reserved to keep every remaining chunk non-empty. Depends only on
/// the arguments, never on scheduling; with uniform weights it degenerates to
/// [`chunk_bounds`]-style near-even splits, and an all-zero weight vector
/// falls back to [`chunk_bounds`] exactly.
///
/// Use this instead of [`chunk_bounds`] when items have skewed costs (e.g.
/// parameter shards of very different sizes) so no chunk carries most of the
/// total work.
///
/// # Panics
///
/// Panics if `num_chunks` is zero.
pub fn weighted_chunk_bounds(weights: &[usize], num_chunks: usize) -> Vec<Range<usize>> {
    assert!(num_chunks > 0, "chunk count must be positive");
    let len = weights.len();
    if len == 0 {
        return Vec::new();
    }
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return chunk_bounds(len, num_chunks);
    }
    let chunks = num_chunks.min(len);
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut cum: u128 = 0;
    let mut produced = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        cum += w as u128;
        let consumed = i + 1;
        let remaining_chunks = chunks - produced - 1;
        if remaining_chunks == 0 {
            break; // the final chunk swallows everything left
        }
        let target = total * (produced as u128 + 1) / chunks as u128;
        // Close early if every remaining chunk needs one of the remaining
        // items to stay non-empty.
        let must_close = len - consumed == remaining_chunks;
        if cum >= target || must_close {
            ranges.push(start..consumed);
            start = consumed;
            produced += 1;
        }
    }
    ranges.push(start..len);
    ranges
}

/// Splits a mutable slice into the chunks described by [`chunk_bounds`],
/// preserving order. The returned sub-slices tile the input exactly.
///
/// # Panics
///
/// Panics if `num_chunks` is zero.
pub fn split_mut<T>(slice: &mut [T], num_chunks: usize) -> Vec<&mut [T]> {
    let bounds = chunk_bounds(slice.len(), num_chunks);
    let mut out = Vec::with_capacity(bounds.len());
    let mut rest = slice;
    for range in &bounds {
        let (head, tail) = rest.split_at_mut(range.len());
        out.push(head);
        rest = tail;
    }
    out
}

/// Splits an immutable slice into the chunks described by [`chunk_bounds`].
///
/// # Panics
///
/// Panics if `num_chunks` is zero.
pub fn split_ref<T>(slice: &[T], num_chunks: usize) -> Vec<&[T]> {
    chunk_bounds(slice.len(), num_chunks).into_iter().map(|r| &slice[r]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_tile_the_range_evenly() {
        assert_eq!(chunk_bounds(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_bounds(9, 3), vec![0..3, 3..6, 6..9]);
        assert_eq!(chunk_bounds(2, 5), vec![0..1, 1..2]);
        assert_eq!(chunk_bounds(0, 4), Vec::<Range<usize>>::new());
        // Sizes differ by at most one and cover everything, for many shapes.
        for len in [0usize, 1, 7, 64, 1023] {
            for chunks in [1usize, 2, 3, 7, 16] {
                let bounds = chunk_bounds(len, chunks);
                let total: usize = bounds.iter().map(Range::len).sum();
                assert_eq!(total, len, "len={len} chunks={chunks}");
                if let (Some(max), Some(min)) =
                    (bounds.iter().map(Range::len).max(), bounds.iter().map(Range::len).min())
                {
                    assert!(max - min <= 1, "len={len} chunks={chunks}");
                }
                let mut expected = 0;
                for b in &bounds {
                    assert_eq!(b.start, expected);
                    expected = b.end;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk count must be positive")]
    fn zero_chunks_panics() {
        chunk_bounds(10, 0);
    }

    #[test]
    fn split_mut_and_ref_match_chunk_bounds() {
        let mut data: Vec<u32> = (0..11).collect();
        let chunks = split_mut(&mut data, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0], &[0, 1, 2]);
        assert_eq!(chunks[3], &[9, 10]);
        let views = split_ref(&data, 4);
        assert_eq!(views.iter().map(|c| c.len()).sum::<usize>(), 11);
        let empty: Vec<&mut [u32]> = split_mut(&mut [][..], 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn map_preserves_item_order_for_any_thread_count() {
        let items: Vec<usize> = (0..23).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 2).collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let pool = ParExecutor::new(threads);
            let out = pool.map(items.clone(), |i, x| {
                assert_eq!(i, x, "index must match the item's position");
                x * 2
            });
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_timed_returns_results_in_order_with_nonnegative_timings() {
        let items: Vec<usize> = (0..17).collect();
        let expected: Vec<usize> = items.iter().map(|x| x + 10).collect();
        for threads in [1usize, 3, 8] {
            let out = ParExecutor::new(threads).map_timed(items.clone(), |_, x| x + 10);
            let (results, timings): (Vec<usize>, Vec<f64>) = out.into_iter().unzip();
            assert_eq!(results, expected, "threads={threads}");
            assert!(timings.iter().all(|&t| t >= 0.0 && t.is_finite()));
        }
    }

    #[test]
    fn for_each_mutates_disjoint_chunks_in_parallel() {
        let mut data = vec![0u64; 1000];
        let pool = ParExecutor::new(4);
        let chunks = split_mut(&mut data, 7);
        pool.for_each(chunks, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i as u64 + 1;
            }
        });
        // Chunk 0 of 1000/7 has 143 elements, every one stamped with index+1.
        assert_eq!(data[0], 1);
        assert_eq!(data[999], 7);
        assert!(data.iter().all(|&v| v > 0));
    }

    #[test]
    fn workers_for_scales_with_the_kernel_size() {
        // Pin the assumed CPU count so the expectations hold on any machine.
        let pool = ParExecutor::new(4).with_assumed_cpus(4);
        assert_eq!(pool.workers_for(0), 1);
        assert_eq!(pool.workers_for(1000), 1, "small kernels run inline");
        assert_eq!(pool.workers_for(MIN_ELEMS_PER_WORKER), 1);
        assert_eq!(pool.workers_for(2 * MIN_ELEMS_PER_WORKER), 2);
        assert_eq!(pool.workers_for(100 * MIN_ELEMS_PER_WORKER), 4, "capped at the pool size");
        assert_eq!(ParExecutor::serial().workers_for(usize::MAX), 1);
    }

    #[test]
    fn workers_for_never_oversubscribes_the_cpus() {
        // A 16-thread executor on a 1-CPU container must not fan a kernel
        // out to 16 threads: the clamp caps it at the core count.
        let pool = ParExecutor::new(16).with_assumed_cpus(1);
        assert_eq!(pool.workers_for(100 * MIN_ELEMS_PER_WORKER), 1);
        let pool = ParExecutor::new(16).with_assumed_cpus(2);
        assert_eq!(pool.workers_for(100 * MIN_ELEMS_PER_WORKER), 2);
        // The clamp never *raises* the count above the configured threads.
        let pool = ParExecutor::new(2).with_assumed_cpus(64);
        assert_eq!(pool.workers_for(100 * MIN_ELEMS_PER_WORKER), 2);
        // Zero assumed CPUs clamps to one rather than dividing by zero.
        assert_eq!(ParExecutor::new(4).with_assumed_cpus(0).num_cpus(), 1);
    }

    #[test]
    fn executor_constructors_and_accessors() {
        assert!(ParExecutor::serial().is_serial());
        assert_eq!(ParExecutor::serial().num_threads(), 1);
        assert_eq!(ParExecutor::new(0).num_threads(), 1, "zero clamps to one");
        assert_eq!(ParExecutor::new(6).num_threads(), 6);
        assert!(!ParExecutor::new(2).is_serial());
        assert!(ParExecutor::current().num_threads() >= 1);
        assert_eq!(ParExecutor::default(), ParExecutor::current());
        assert_eq!(ParExecutor::new(3).mode(), ExecMode::WorkStealing);
        assert_eq!(ParExecutor::deterministic(3).mode(), ExecMode::Deterministic);
        assert_eq!(ParExecutor::deterministic(3).num_threads(), 3);
        assert_eq!(
            ParExecutor::new(3).with_mode(ExecMode::Deterministic).mode(),
            ExecMode::Deterministic
        );
        assert!(ParExecutor::new(2).num_cpus() >= 1);
    }

    #[test]
    fn stealing_and_deterministic_modes_return_identical_results() {
        let items: Vec<usize> = (0..57).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let stealing = ParExecutor::new(threads).map(items.clone(), |_, x| x * x + 1);
            let pinned = ParExecutor::deterministic(threads).map(items.clone(), |_, x| x * x + 1);
            assert_eq!(stealing, expected, "stealing threads={threads}");
            assert_eq!(pinned, expected, "deterministic threads={threads}");
        }
    }

    #[test]
    fn stealing_drains_a_skewed_queue() {
        // One item is ~100x heavier than the rest. With stealing, the other
        // workers drain the remaining items while one worker is pinned on
        // the heavy item; either way every result must land in its slot.
        let weights: Vec<usize> = (0..40).map(|i| if i == 0 { 10_000 } else { 100 }).collect();
        let items: Vec<usize> = (0..40).collect();
        for threads in [2usize, 4] {
            for mode in [ExecMode::WorkStealing, ExecMode::Deterministic] {
                let pool = ParExecutor::new(threads).with_mode(mode);
                let out = pool.map_weighted(items.clone(), &weights, |i, x| {
                    assert_eq!(i, x);
                    // Simulate the skew: heavy items spin proportionally.
                    let spin = weights[i] / 100;
                    let mut acc = 0u64;
                    for k in 0..spin * 1000 {
                        acc = acc.wrapping_add(k as u64);
                    }
                    std::hint::black_box(acc);
                    x + 1
                });
                let expected: Vec<usize> = (1..=40).collect();
                assert_eq!(out, expected, "threads={threads} mode={mode:?}");
            }
        }
    }

    #[test]
    fn map_weighted_matches_map_for_any_weights() {
        let items: Vec<usize> = (0..31).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        let weight_vectors: Vec<Vec<usize>> = vec![
            vec![1; 31],
            (0..31).collect(),
            (0..31).rev().collect(),
            (0..31).map(|i| if i % 7 == 0 { 1000 } else { 1 }).collect(),
            vec![0; 31],
        ];
        for weights in &weight_vectors {
            for threads in [1usize, 2, 5] {
                let out =
                    ParExecutor::new(threads).map_weighted(items.clone(), weights, |_, x| x * 3);
                assert_eq!(&out, &expected, "threads={threads} weights={weights:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight length mismatch")]
    fn map_weighted_rejects_mismatched_weights() {
        ParExecutor::new(2).map_weighted(vec![1, 2, 3], &[1, 2], |_, x| x);
    }

    #[test]
    fn weighted_chunk_bounds_tile_and_balance() {
        // Uniform weights behave like near-even splits.
        let uniform = vec![1usize; 12];
        let bounds = weighted_chunk_bounds(&uniform, 4);
        assert_eq!(bounds, vec![0..3, 3..6, 6..9, 9..12]);
        // All-zero weights fall back to chunk_bounds exactly.
        assert_eq!(weighted_chunk_bounds(&[0; 10], 3), chunk_bounds(10, 3));
        assert_eq!(weighted_chunk_bounds(&[], 3), Vec::<Range<usize>>::new());
        // One huge item: it gets its own chunk and the rest split the tail.
        let skewed = [1000usize, 1, 1, 1, 1, 1];
        let bounds = weighted_chunk_bounds(&skewed, 3);
        assert_eq!(bounds[0], 0..1, "the heavy head closes the first chunk immediately");
        // Generic properties: exact tiling, non-empty chunks, count <= requested.
        let cases: Vec<Vec<usize>> = vec![
            vec![5, 1, 1, 1, 8, 1, 1, 1, 1, 1],
            (0..97).map(|i| (i * 37) % 13).collect(),
            vec![usize::MAX / 4; 8], // large weights must not overflow
            vec![7],
        ];
        for weights in &cases {
            for chunks in [1usize, 2, 3, 7, 16] {
                let bounds = weighted_chunk_bounds(weights, chunks);
                assert!(bounds.len() <= chunks, "chunks={chunks} weights={weights:?}");
                assert!(bounds.iter().all(|r| !r.is_empty()));
                let mut expected = 0;
                for b in &bounds {
                    assert_eq!(b.start, expected, "chunks={chunks} weights={weights:?}");
                    expected = b.end;
                }
                assert_eq!(expected, weights.len(), "chunks={chunks} weights={weights:?}");
            }
        }
        // Balance: for the strided case no chunk should carry more than
        // total/chunks plus one item's worth of slack.
        let weights: Vec<usize> = (0..97).map(|i| (i * 37) % 13 + 1).collect();
        let total: usize = weights.iter().sum();
        let max_w = *weights.iter().max().unwrap();
        for chunks in [2usize, 4, 8] {
            let bounds = weighted_chunk_bounds(&weights, chunks);
            for b in &bounds {
                let w: usize = weights[b.clone()].iter().sum();
                assert!(
                    w <= total / chunks + max_w,
                    "chunk {b:?} weight {w} exceeds fair share (chunks={chunks})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk count must be positive")]
    fn weighted_zero_chunks_panics() {
        weighted_chunk_bounds(&[1, 2], 0);
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = ParExecutor::new(8);
        let out = pool.map(vec![41], |i, x| {
            assert_eq!(i, 0);
            x + 1
        });
        assert_eq!(out, vec![42]);
        let empty: Vec<i32> = pool.map(Vec::<i32>::new(), |_, x| x);
        assert!(empty.is_empty());
    }
}
