//! Canonical JSON normalization and content hashing — the cache-key layer of
//! the [`crate::CampaignService`].
//!
//! A content-addressed result cache is only correct if every encoding of the
//! same configuration maps to the same key. JSON gives encoders three degrees
//! of freedom that must not leak into the key:
//!
//! * **key order** — objects are unordered; canonical form sorts keys,
//! * **whitespace / number spelling** — canonical form re-renders from the
//!   parsed value tree (so `1e-2` and `0.01` agree),
//! * **omitted vs explicit-null optionals** — canonical form drops
//!   null-valued object entries, and entries whose value canonicalizes to an
//!   *empty object* (a knob group with every knob omitted is the same
//!   configuration as no knob group at all — e.g. a `WorkloadSpec` with both
//!   overrides unset).
//!
//! The key itself is the dependency-free 64-bit FNV-1a hash of the canonical
//! text. The service stores results under the canonical *text* and uses the
//! hash only as the compact content address it reports, so a hash collision
//! can never alias two different specs onto one cache entry.

use serde::{write_json_string, Value};

/// The 64-bit FNV-1a hash of `bytes` (offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`) — small, dependency-free, and stable across
/// platforms and processes, which is all a content address needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Renders `value` in canonical form: object keys sorted, null and
/// empty-object entries dropped, numbers re-rendered from their parsed
/// values, no whitespace. Two JSON texts that parse to semantically equal
/// documents canonicalize to the same string.
pub fn canonical_json(value: &Value) -> String {
    let mut out = String::new();
    write_canonical(value, &mut out);
    out
}

/// Whether a value vanishes when it appears as an object entry: `null`, or
/// an object whose every entry vanishes (an all-defaults knob group).
fn vanishes(value: &Value) -> bool {
    match value {
        Value::Null => true,
        Value::Object(pairs) => pairs.iter().all(|(_, v)| vanishes(v)),
        _ => false,
    }
}

fn write_canonical(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&canonical_number(n.as_literal())),
        Value::String(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            let mut kept: Vec<&(String, Value)> =
                pairs.iter().filter(|(_, v)| !vanishes(v)).collect();
            kept.sort_by(|a, b| a.0.cmp(&b.0));
            out.push('{');
            for (i, (key, value)) in kept.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_canonical(value, out);
            }
            out.push('}');
        }
    }
}

/// One canonical spelling per numeric value: integers in range render through
/// `u64`/`i64` (so `1`, `1.0` and `1e0` agree and large seeds stay exact),
/// everything else through `f64`'s shortest round-trip form.
fn canonical_number(literal: &str) -> String {
    if let Ok(n) = literal.parse::<u64>() {
        return n.to_string();
    }
    if let Ok(n) = literal.parse::<i64>() {
        return n.to_string();
    }
    let n: f64 = literal.parse().unwrap_or(f64::NAN);
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        // Exact-integer floats (`1.0`, `1e2`) spell like integers.
        return format!("{}", n as i64);
    }
    n.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(text: &str) -> String {
        canonical_json(&serde_json::parse(text).expect("test JSON parses"))
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn key_order_whitespace_and_nulls_do_not_matter() {
        let a = canon(r#"{"b": 1, "a": {"x": null, "y": 2}}"#);
        let b = canon("{\"a\":{\"y\":2},\n  \"b\":1.0}");
        assert_eq!(a, b);
        assert_eq!(a, r#"{"a":{"y":2},"b":1}"#);
    }

    #[test]
    fn all_null_knob_groups_vanish_like_omitted_ones() {
        let explicit = canon(r#"{"w": {"batch": null, "seq": null}, "d": 3}"#);
        let omitted = canon(r#"{"d": 3}"#);
        assert_eq!(explicit, omitted);
        // ... but an object with any real entry survives.
        assert_ne!(canon(r#"{"w": {"batch": 4}, "d": 3}"#), omitted);
    }

    #[test]
    fn number_spellings_agree() {
        assert_eq!(canon("[1, 1.0, 1e0, 100, 1e2]"), "[1,1,1,100,100]");
        assert_eq!(canon("[0.01, 1e-2]"), "[0.01,0.01]");
        assert_eq!(canon("[-3, -3.0]"), "[-3,-3]");
        // u64 seeds outside the exact-f64 range stay exact.
        assert_eq!(canon("[18446744073709551615]"), "[18446744073709551615]");
    }

    #[test]
    fn arrays_preserve_order_and_strings_escape() {
        assert_ne!(canon("[1,2]"), canon("[2,1]"));
        assert_eq!(canon(r#"{"s": "a\nb"}"#), "{\"s\":\"a\\nb\"}");
    }
}
