//! Multi-host data-parallel training over the scheduler stack.
//!
//! One Smart-Infinity server is the paper's unit of evaluation; this module
//! scales the timed model *out*: `hosts` identical servers each run the
//! single-host iteration (simulated by the method schedulers as usual), and
//! a cluster-level task graph layers the data-parallel gradient allreduce on
//! top — per-host NICs into an oversubscribed backplane, a shared reduction
//! stage, and the per-host in-storage update once the reduced gradient
//! lands.
//!
//! The cluster layer is expressed *entirely* through the pluggable DAG
//! machinery ([`simkit::Dag`], [`simkit::Scheduler`], [`simkit::execute`]
//! and [`simkit::DirectLowering`]); the pre-refactor bespoke schedule
//! builders had no way to say "every host's exchange must land before the
//! reduction, but each host's update chases only its own broadcast". That
//! asymmetric synchronisation — all-in on the way up, per-host on the way
//! down — is the [`ClusterScheduler`]'s placement decision, and what lets a
//! straggler host delay the reduction without serialising the other hosts'
//! updates behind the slowest one.

use crate::spec::MethodSpec;
use serde::{Deserialize, Serialize};
use simkit::{
    execute, Anchor, Dag, DagTaskId, DagWork, Decision, DirectLowering, Resource, ScheduleDecision,
    Scheduler, SimError, Simulation, SpeedupCurve, SystemView, GB,
};
use ztrain::{IterationReport, TrainError};

/// Default per-host NIC bandwidth, in gigabits per second.
const DEFAULT_INTERCONNECT_GBPS: f64 = 100.0;
/// Default core count of the shared gradient-reduction stage.
const DEFAULT_REDUCE_CORES: usize = 4;
/// Default Amdahl serial fraction of the reduction kernel.
const DEFAULT_SERIAL_FRACTION: f64 = 0.05;
/// Per-core gradient-reduction rate, in bytes per second.
const REDUCE_BYTES_PER_CORE: f64 = 8.0 * GB;
/// The backplane carries the sum of the NIC rates divided by this factor
/// (a 2:1 oversubscribed top-of-rack switch).
const BACKPLANE_OVERSUBSCRIPTION: f64 = 2.0;

/// One deliberately slow host: its compute (forward, backward, update) runs
/// `factor`× slower than its peers — the cluster-level straggler scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StragglerSpec {
    /// Which host lags (0-based).
    pub host: usize,
    /// Slowdown factor (≥ 1; 1 means no straggler).
    pub factor: f64,
}

/// The cluster half of a machine description: how many single-server
/// replicas train data-parallel, and the interconnect between them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of hosts (≥ 2); each is one full single-server machine.
    pub hosts: usize,
    /// Per-host NIC bandwidth in Gb/s (default 100).
    pub interconnect_gbps: Option<f64>,
    /// Cores of the shared gradient-reduction stage (default 4).
    pub reduce_cores: Option<usize>,
    /// Amdahl serial fraction of the reduction kernel (default 0.05).
    pub serial_fraction: Option<f64>,
    /// Optional straggler host.
    pub straggler: Option<StragglerSpec>,
}

impl ClusterSpec {
    /// A cluster of `hosts` identical servers with default interconnect.
    pub fn hosts(hosts: usize) -> Self {
        ClusterSpec {
            hosts,
            interconnect_gbps: None,
            reduce_cores: None,
            serial_fraction: None,
            straggler: None,
        }
    }

    /// Marks one host as a straggler.
    #[must_use]
    pub fn with_straggler(mut self, host: usize, factor: f64) -> Self {
        self.straggler = Some(StragglerSpec { host, factor });
        self
    }

    /// Sets the per-host NIC bandwidth in Gb/s.
    #[must_use]
    pub fn with_interconnect_gbps(mut self, gbps: f64) -> Self {
        self.interconnect_gbps = Some(gbps);
        self
    }

    /// The per-host NIC rate in bytes per second.
    fn nic_bytes_per_sec(&self) -> f64 {
        self.interconnect_gbps.unwrap_or(DEFAULT_INTERCONNECT_GBPS) * 1e9 / 8.0
    }

    /// The shared reduction stage as a [`Resource`] description: a
    /// multi-core unit whose throughput follows an Amdahl speedup curve.
    fn reducer(&self) -> Resource {
        let cores = self.reduce_cores.unwrap_or(DEFAULT_REDUCE_CORES) as u32;
        let serial_fraction = self.serial_fraction.unwrap_or(DEFAULT_SERIAL_FRACTION);
        Resource::new(
            "reducer",
            cores,
            REDUCE_BYTES_PER_CORE,
            f64::INFINITY,
            SpeedupCurve::Amdahl { serial_fraction },
        )
    }

    /// Checks the cluster shape and its compatibility with the method.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for fewer than two hosts, a
    /// non-positive interconnect, invalid reduction knobs, a straggler
    /// outside the cluster or with a factor below 1, and for methods without
    /// `in_storage_update` — the cluster layer reduces gradients *between*
    /// the hosts' in-storage updates, so the host-CPU baseline cannot be
    /// scaled out this way.
    pub fn validate(&self, method: &MethodSpec) -> Result<(), TrainError> {
        if self.hosts < 2 {
            return Err(TrainError::config("a cluster needs at least two hosts"));
        }
        if let Some(gbps) = self.interconnect_gbps {
            if !(gbps.is_finite() && gbps > 0.0) {
                return Err(TrainError::config(format!(
                    "cluster interconnect must be positive and finite, got {gbps} Gb/s"
                )));
            }
        }
        if self.reduce_cores == Some(0) {
            return Err(TrainError::config("the reduction stage needs at least one core"));
        }
        if let Some(serial) = self.serial_fraction {
            if !(serial.is_finite() && (0.0..1.0).contains(&serial)) {
                return Err(TrainError::config(format!(
                    "reduction serial fraction must be in [0, 1), got {serial}"
                )));
            }
        }
        if let Some(straggler) = &self.straggler {
            if straggler.host >= self.hosts {
                return Err(TrainError::config(format!(
                    "straggler host {} is outside the cluster of {} host(s)",
                    straggler.host, self.hosts
                )));
            }
            if !(straggler.factor.is_finite() && straggler.factor >= 1.0) {
                return Err(TrainError::config(format!(
                    "straggler factor must be at least 1, got {}",
                    straggler.factor
                )));
            }
        }
        if !method.in_storage_update {
            return Err(TrainError::config(
                "cluster training layers the gradient allreduce over the in-storage update \
                 path: enable in_storage_update",
            ));
        }
        Ok(())
    }
}

/// The cluster allreduce schedule: the reduction waits on *every* host's
/// gradient exchange (realised as decision anchors over the graph's soft
/// dataflow), while each host's broadcast and update chase only their own
/// structural inputs.
#[derive(Debug)]
pub struct ClusterScheduler {
    reduce: DagTaskId,
    exchanges: Vec<DagTaskId>,
}

impl Scheduler for ClusterScheduler {
    fn name(&self) -> &'static str {
        "cluster-allreduce"
    }

    fn on_task_ready(
        &mut self,
        task: DagTaskId,
        _dag: &Dag,
        _system: &SystemView<'_>,
    ) -> Vec<Decision> {
        let mut decision = ScheduleDecision::new(task);
        if task == self.reduce {
            decision = decision.after_all(self.exchanges.iter().map(|&t| Anchor::Task(t)));
        }
        vec![Decision::Schedule(decision)]
    }
}

/// The report-relevant landmarks of a cluster iteration graph.
struct ClusterLayout {
    fw_end: DagTaskId,
    allreduce_end: DagTaskId,
    iter_end: DagTaskId,
    reduce: DagTaskId,
    exchanges: Vec<DagTaskId>,
}

/// Phase handles of a cluster simulation.
struct ClusterPhases {
    forward: simkit::PhaseId,
    backward: simkit::PhaseId,
    update: simkit::PhaseId,
}

/// Builds the cluster-level iteration graph: per-host forward/backward (as
/// single compute blocks costed by the single-host simulation), gradient
/// exchange into the shared reducer, per-host broadcast and update.
fn build_cluster_graph(
    hosts: usize,
    per_host: &IterationReport,
    grad_bytes: f64,
    phases: &ClusterPhases,
) -> (Dag, ClusterLayout) {
    let mut dag = Dag::new();
    let hub = hosts; // site index of the switch-attached reduction stage
    let mut fw_tasks = Vec::with_capacity(hosts);
    let mut acts = Vec::with_capacity(hosts);
    for h in 0..hosts {
        let t = dag
            .add_task(format!("fw.h{h}"), DagWork::Compute { site: h, amount: per_host.forward_s });
        dag.set_phase(t, phases.forward);
        acts.push(dag.add_output(t, format!("acts.h{h}"), 0.0, Some(h)));
        fw_tasks.push(t);
    }
    let fw_end = dag.add_task("fw.end", DagWork::Join);
    for &t in &fw_tasks {
        dag.add_after(fw_end, t);
    }
    let mut grads = Vec::with_capacity(hosts);
    for (h, &act) in acts.iter().enumerate() {
        let t = dag.add_task(
            format!("bw.h{h}"),
            DagWork::Compute { site: h, amount: per_host.backward_s },
        );
        dag.set_phase(t, phases.backward);
        dag.connect(t, act);
        grads.push(dag.add_output(t, format!("grads.h{h}"), grad_bytes, Some(h)));
    }
    let mut exchanges = Vec::with_capacity(hosts);
    let mut shards = Vec::with_capacity(hosts);
    for (h, &grad) in grads.iter().enumerate() {
        let t = dag.add_task(
            format!("exchange.h{h}"),
            DagWork::Transfer { from: h, to: hub, bytes: grad_bytes },
        );
        dag.set_phase(t, phases.backward);
        dag.connect(t, grad);
        shards.push(dag.add_output(t, format!("shard.h{h}"), grad_bytes, Some(hub)));
        exchanges.push(t);
    }
    // The reduction's dataflow from the exchanges is soft: the scheduler
    // decides the synchronisation realising the allreduce barrier.
    let reduce =
        dag.add_task("reduce", DagWork::Compute { site: hub, amount: grad_bytes * hosts as f64 });
    dag.set_phase(reduce, phases.backward);
    for &shard in &shards {
        dag.connect_soft(reduce, shard);
    }
    let reduced = dag.add_output(reduce, "reduced", grad_bytes, Some(hub));
    let mut bcasts = Vec::with_capacity(hosts);
    let mut summed = Vec::with_capacity(hosts);
    for h in 0..hosts {
        let t = dag.add_task(
            format!("bcast.h{h}"),
            DagWork::Transfer { from: hub, to: h, bytes: grad_bytes },
        );
        dag.set_phase(t, phases.backward);
        dag.connect(t, reduced);
        summed.push(dag.add_output(t, format!("summed.h{h}"), grad_bytes, Some(h)));
        bcasts.push(t);
    }
    let allreduce_end = dag.add_task("allreduce.end", DagWork::Join);
    for &t in &bcasts {
        dag.add_after(allreduce_end, t);
    }
    let mut updates = Vec::with_capacity(hosts);
    for (h, &sum) in summed.iter().enumerate() {
        let t = dag.add_task(
            format!("update.h{h}"),
            DagWork::Compute { site: h, amount: per_host.update_s },
        );
        dag.set_phase(t, phases.update);
        dag.connect(t, sum);
        updates.push(t);
    }
    let iter_end = dag.add_task("iter.end", DagWork::Join);
    for &t in &updates {
        dag.add_after(iter_end, t);
    }
    (dag, ClusterLayout { fw_end, allreduce_end, iter_end, reduce, exchanges })
}

/// Simulates one data-parallel cluster iteration: every host runs the given
/// single-host iteration, gradients of `grad_bytes` are all-reduced over the
/// cluster interconnect, and the per-host updates follow their broadcasts.
///
/// The returned breakdown attributes the allreduce to the backward phase:
/// `forward_s` is the slowest host's forward pass, `backward_s` spans
/// backward + exchange + reduction + broadcast, and `update_s` is the tail
/// the per-host updates add after the allreduce completes.
///
/// # Errors
///
/// Propagates [`SimError`] from the simulation kernel (which only occurs for
/// malformed graphs and would indicate a bug in this module).
pub fn simulate_allreduce(
    cluster: &ClusterSpec,
    per_host: &IterationReport,
    grad_bytes: f64,
) -> Result<IterationReport, SimError> {
    let hosts = cluster.hosts;
    let hub = hosts;
    let mut sim = Simulation::new();
    let phases = ClusterPhases {
        forward: sim.add_phase("cluster.forward"),
        backward: sim.add_phase("cluster.backward+allreduce"),
        update: sim.add_phase("cluster.update"),
    };
    let nic_rate = cluster.nic_bytes_per_sec();
    let backplane = sim.add_link("backplane", nic_rate * hosts as f64 / BACKPLANE_OVERSUBSCRIPTION);
    // Host compute amounts are *seconds* from the single-host simulation, so
    // host resources run at unit rate — except the straggler, whose rate
    // drops by its factor.
    let mut resources = Vec::with_capacity(hosts + 1);
    let mut host_res = Vec::with_capacity(hosts);
    let mut nics = Vec::with_capacity(hosts);
    for h in 0..hosts {
        let slowdown = match &cluster.straggler {
            Some(s) if s.host == h => s.factor,
            _ => 1.0,
        };
        let desc = Resource::serial(format!("host{h}"), 1.0 / slowdown);
        host_res.push(sim.add_resource(desc.name.clone(), desc.full_rate()));
        resources.push(desc);
        nics.push(sim.add_link(format!("nic{h}"), nic_rate));
    }
    let reducer_desc = cluster.reducer();
    let reducer = sim.add_resource(reducer_desc.name.clone(), reducer_desc.full_rate());
    resources.push(reducer_desc);

    let (dag, layout) = build_cluster_graph(hosts, per_host, grad_bytes, &phases);
    let mut scheduler =
        ClusterScheduler { reduce: layout.reduce, exchanges: layout.exchanges.clone() };
    let outcome = {
        let mut lowering = DirectLowering::new(&mut sim);
        for h in 0..hosts {
            lowering.map_site(h, host_res[h]);
            lowering.map_route(h, hub, vec![nics[h], backplane]);
            lowering.map_route(hub, h, vec![backplane, nics[h]]);
        }
        lowering.map_site(hub, reducer);
        execute(&dag, &resources, &mut scheduler, &mut lowering)?
    };
    let timeline = sim.run()?;
    let finish = |id| {
        let task = outcome.task(id).expect("executor schedules every cluster task");
        timeline.finish_time(task)
    };
    let t_fw = finish(layout.fw_end);
    let t_allreduce = finish(layout.allreduce_end);
    let t_end = finish(layout.iter_end);
    Ok(IterationReport::new(t_fw, t_allreduce - t_fw, t_end - t_allreduce))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn per_host() -> IterationReport {
        IterationReport::new(1.0, 2.0, 3.0)
    }

    #[test]
    fn cluster_validation_rejects_bad_shapes() {
        let method = MethodSpec::smart_update_optimized();
        assert!(ClusterSpec::hosts(1).validate(&method).is_err());
        assert!(ClusterSpec::hosts(4).validate(&method).is_ok());
        assert!(ClusterSpec::hosts(4).with_straggler(4, 2.0).validate(&method).is_err());
        assert!(ClusterSpec::hosts(4).with_straggler(1, 0.5).validate(&method).is_err());
        let mut slow_net = ClusterSpec::hosts(4);
        slow_net.interconnect_gbps = Some(0.0);
        assert!(slow_net.validate(&method).is_err());
        let mut bad_serial = ClusterSpec::hosts(4);
        bad_serial.serial_fraction = Some(1.5);
        assert!(bad_serial.validate(&method).is_err());
        let mut no_cores = ClusterSpec::hosts(4);
        no_cores.reduce_cores = Some(0);
        assert!(no_cores.validate(&method).is_err());
        // The host-CPU baseline has no in-storage update to overlap with.
        let err = ClusterSpec::hosts(4).validate(&MethodSpec::baseline()).expect_err("baseline");
        assert!(err.to_string().contains("in_storage_update"), "{err}");
    }

    #[test]
    fn allreduce_adds_to_the_single_host_iteration() {
        let report = simulate_allreduce(&ClusterSpec::hosts(4), &per_host(), 8.0 * GB).unwrap();
        let single = per_host();
        // Forward and update are unchanged; the allreduce lengthens backward.
        assert!((report.forward_s - single.forward_s).abs() < 1e-9);
        assert!(report.backward_s > single.backward_s);
        assert!((report.update_s - single.update_s).abs() < 1e-9);
    }

    #[test]
    fn straggler_delays_the_reduction_but_not_other_hosts_updates() {
        let base = simulate_allreduce(&ClusterSpec::hosts(4), &per_host(), 8.0 * GB).unwrap();
        let straggled = simulate_allreduce(
            &ClusterSpec::hosts(4).with_straggler(2, 3.0),
            &per_host(),
            8.0 * GB,
        )
        .unwrap();
        // The slowest host's forward gates the cluster forward phase...
        assert!((straggled.forward_s - 3.0 * per_host().forward_s).abs() < 1e-9);
        // ...and the allreduce barrier makes the whole iteration pay for it.
        assert!(straggled.total_s() > base.total_s());
        // But the iteration does not pay 3x end to end: only the straggler's
        // compute stretches, and the fast hosts' updates complete inside the
        // straggler's update tail instead of queueing behind it.
        assert!(straggled.total_s() < 3.0 * base.total_s());
        assert!(straggled.update_s <= 3.0 * per_host().update_s + 1e-9);
    }

    #[test]
    fn faster_interconnects_shrink_the_allreduce() {
        let mut slow = ClusterSpec::hosts(4);
        slow.interconnect_gbps = Some(25.0);
        let mut fast = ClusterSpec::hosts(4);
        fast.interconnect_gbps = Some(200.0);
        let t_slow = simulate_allreduce(&slow, &per_host(), 8.0 * GB).unwrap();
        let t_fast = simulate_allreduce(&fast, &per_host(), 8.0 * GB).unwrap();
        assert!(t_slow.backward_s > t_fast.backward_s);
    }

    #[test]
    fn reduction_stage_follows_its_amdahl_curve() {
        let mut one_core = ClusterSpec::hosts(4);
        one_core.reduce_cores = Some(1);
        let mut many_cores = ClusterSpec::hosts(4);
        many_cores.reduce_cores = Some(16);
        // A big gradient makes the reduction the bottleneck.
        let grad = 256.0 * GB;
        let t1 = simulate_allreduce(&one_core, &per_host(), grad).unwrap();
        let t16 = simulate_allreduce(&many_cores, &per_host(), grad).unwrap();
        assert!(t16.backward_s < t1.backward_s);
        // Amdahl: 16 cores are faster, but nowhere near 16x.
        let r1 = one_core.reducer().full_rate();
        let r16 = many_cores.reducer().full_rate();
        assert!(r16 / r1 > 4.0 && r16 / r1 < 16.0, "Amdahl speedup {}", r16 / r1);
    }
}
