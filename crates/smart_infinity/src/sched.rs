//! The Smart-Infinity method schedules as named [`Scheduler`]s, plus the
//! scheduler comparison harness behind `figures -- sched`.
//!
//! The timed engines all execute the *same* iteration graph
//! ([`ztrain::schedule::build_iteration_graph`]); what the paper's ladder
//! varies is the schedule. Each rung is a thin named wrapper around
//! [`MethodPolicy`] with the routing/synchronisation pair that method uses:
//!
//! | scheduler        | method | routing      | tasklet chain |
//! |------------------|--------|--------------|---------------|
//! | `host-update`    | BASE   | striped      | — (host CPU)  |
//! | `serial-naive`   | SU     | striped      | sequential    |
//! | `serial-overlap` | SU+O   | striped      | overlapped    |
//! | `pipelined`      | SU+O+P | owner-routed | overlapped    |
//!
//! (`pipelined-naive` — owner routing under the sequential handler — exists
//! as the ablation the session's handler override reaches.)

use crate::engine_timed::SmartInfinityEngine;
use crate::spec::{MethodSpec, RunSpec};
use crate::HandlerMode;
use serde::Serialize;
use simkit::{Dag, DagTaskId, Decision, Scheduler, SystemView};
use ztrain::schedule::{ChainSync, IterLayout, MethodPolicy, OffloadRouting};
use ztrain::{IterationReport, TrainError};

/// `SU`: striped gradient offload, sequential tasklet chains with the naive
/// handler's per-tasklet buffer-allocation overhead.
#[derive(Debug)]
pub struct SerialNaiveScheduler<'a>(MethodPolicy<'a>);

impl<'a> SerialNaiveScheduler<'a> {
    /// A serial-naive scheduler over an in-storage iteration layout.
    pub fn new(layout: &'a IterLayout) -> Self {
        Self(MethodPolicy::in_storage(
            layout,
            OffloadRouting::Striped,
            ChainSync::Sequential { setup_s: SmartInfinityEngine::NAIVE_TASKLET_OVERHEAD_S },
            "serial-naive",
        ))
    }
}

/// `SU+O`: striped gradient offload, overlapped tasklet chains (buffer
/// reuse).
#[derive(Debug)]
pub struct SerialOverlapScheduler<'a>(MethodPolicy<'a>);

impl<'a> SerialOverlapScheduler<'a> {
    /// A serial-overlap scheduler over an in-storage iteration layout.
    pub fn new(layout: &'a IterLayout) -> Self {
        Self(MethodPolicy::in_storage(
            layout,
            OffloadRouting::Striped,
            ChainSync::Overlapped,
            "serial-overlap",
        ))
    }
}

/// `SU+O+P`: owner-routed gradient offload — each device's update chain
/// starts as soon as *its own* shard gradients have landed — with the
/// tasklet chain synchronisation of the given handler.
#[derive(Debug)]
pub struct PipelinedScheduler<'a>(MethodPolicy<'a>);

impl<'a> PipelinedScheduler<'a> {
    /// A pipelined scheduler over an in-storage iteration layout.
    pub fn new(layout: &'a IterLayout, handler: HandlerMode) -> Self {
        let (chain, name) = match handler {
            HandlerMode::Optimized => (ChainSync::Overlapped, "pipelined"),
            HandlerMode::Naive => (
                ChainSync::Sequential { setup_s: SmartInfinityEngine::NAIVE_TASKLET_OVERHEAD_S },
                "pipelined-naive",
            ),
        };
        Self(MethodPolicy::in_storage(layout, OffloadRouting::OwnerRouted, chain, name))
    }
}

macro_rules! delegate_scheduler {
    ($ty:ident) => {
        impl Scheduler for $ty<'_> {
            fn name(&self) -> &'static str {
                self.0.name()
            }

            fn on_task_ready(
                &mut self,
                task: DagTaskId,
                dag: &Dag,
                system: &SystemView<'_>,
            ) -> Vec<Decision> {
                self.0.on_task_ready(task, dag, system)
            }
        }
    };
}

delegate_scheduler!(SerialNaiveScheduler);
delegate_scheduler!(SerialOverlapScheduler);
delegate_scheduler!(PipelinedScheduler);

/// Selects the method scheduler the engine's `(handler, pipelined)` axes
/// imply, boxed for uniform dispatch.
pub fn method_scheduler<'a>(
    handler: HandlerMode,
    pipelined: bool,
    layout: &'a IterLayout,
) -> Box<dyn Scheduler + 'a> {
    match (handler, pipelined) {
        (_, true) => Box::new(PipelinedScheduler::new(layout, handler)),
        (HandlerMode::Naive, false) => Box::new(SerialNaiveScheduler::new(layout)),
        (HandlerMode::Optimized, false) => Box::new(SerialOverlapScheduler::new(layout)),
    }
}

/// One row of a scheduler comparison: a scheduler's name, the method axes it
/// corresponds to, and the per-phase breakdown it produced.
#[derive(Debug, Clone, Serialize)]
pub struct SchedulerRun {
    /// Scheduler name (`host-update`, `serial-naive`, ...).
    pub scheduler: &'static str,
    /// The ladder label of the corresponding method axes.
    pub method: String,
    /// Per-phase timing under this scheduler.
    pub report: IterationReport,
}

/// Runs one spec's model/machine/workload under *every* method scheduler and
/// returns the per-phase comparison (the `figures -- sched` table).
///
/// The spec's method axes are replaced row by row — `host-update` runs the
/// plain-SSD baseline machine resolution, the smart rows keep the spec's
/// compression setting — while model, machine, workload, optimizer, subgroup
/// capacity and fault plan are carried through unchanged. A handler override
/// in the spec is dropped: each scheduler *is* a handler choice.
///
/// # Errors
///
/// Returns [`TrainError::Config`] if the carried-through knobs do not
/// validate for some rung (e.g. a cluster machine, which requires the
/// in-storage update path and so cannot run `host-update`).
pub fn compare_schedulers(spec: &RunSpec) -> Result<Vec<SchedulerRun>, TrainError> {
    let keep = spec.method.keep_ratio();
    let rungs: [(&'static str, MethodSpec); 4] = [
        ("host-update", MethodSpec::baseline()),
        ("serial-naive", carry_compression(MethodSpec::smart_update(), keep)),
        ("serial-overlap", carry_compression(MethodSpec::smart_update_optimized(), keep)),
        ("pipelined", MethodSpec::pipelined(keep)),
    ];
    let mut rows = Vec::with_capacity(rungs.len());
    for (scheduler, method) in rungs {
        let mut run = spec.clone();
        run.method = method;
        run.handler = None;
        let report = run.session()?.simulate_iteration()?;
        rows.push(SchedulerRun { scheduler, method: method.to_string(), report });
    }
    Ok(rows)
}

fn carry_compression(method: MethodSpec, keep_ratio: Option<f64>) -> MethodSpec {
    match keep_ratio {
        Some(k) => method.with_compression(crate::spec::CompressionSpec::top_k(k)),
        None => method,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MachineSpec, ModelSpec};

    #[test]
    fn scheduler_names_cover_the_ladder() {
        let spec = RunSpec::new(
            ModelSpec::preset("GPT2-0.34B"),
            MachineSpec::devices(2),
            MethodSpec::smart_update_optimized(),
        );
        let session = spec.session().unwrap();
        let engine = SmartInfinityEngine::new(
            session.machine().clone(),
            session.workload().clone(),
            optim::OptimizerKind::Adam,
        );
        // Build the shared graph once and check each wrapper reports its name.
        let mut plat = ztrain::TimedPlatform::new(engine.machine());
        let phases = ztrain::schedule::IterPhases {
            forward: plat.add_phase("fw"),
            backward: plat.add_phase("bw"),
            update: plat.add_phase("up"),
        };
        let graph = ztrain::schedule::build_iteration_graph(
            engine.workload(),
            ztrain::schedule::SiteMap::new(plat.num_gpus(), plat.num_devices()),
            optim::OptimizerKind::Adam,
            &ztrain::schedule::GraphKnobs::in_storage(None, 100_000_000),
            phases,
        );
        assert_eq!(SerialNaiveScheduler::new(&graph.layout).name(), "serial-naive");
        assert_eq!(SerialOverlapScheduler::new(&graph.layout).name(), "serial-overlap");
        assert_eq!(
            PipelinedScheduler::new(&graph.layout, HandlerMode::Optimized).name(),
            "pipelined"
        );
        assert_eq!(
            PipelinedScheduler::new(&graph.layout, HandlerMode::Naive).name(),
            "pipelined-naive"
        );
        assert_eq!(
            method_scheduler(HandlerMode::Naive, false, &graph.layout).name(),
            "serial-naive"
        );
        assert_eq!(
            method_scheduler(HandlerMode::Optimized, true, &graph.layout).name(),
            "pipelined"
        );
    }

    #[test]
    fn comparison_orders_the_ladder() {
        let spec = RunSpec::new(
            ModelSpec::preset("GPT2-4.0B"),
            MachineSpec::devices(4),
            MethodSpec::smart_update_optimized(),
        );
        let rows = compare_schedulers(&spec).unwrap();
        assert_eq!(rows.len(), 4);
        let by_name: std::collections::HashMap<&str, f64> =
            rows.iter().map(|r| (r.scheduler, r.report.total_s())).collect();
        // The naive handler's per-tasklet overhead erases the in-storage gain
        // (paper Fig. 12) — it loses even to the host-update baseline.
        assert!(by_name["serial-naive"] > by_name["host-update"]);
        // From there each optimisation rung is at least as fast as the last,
        // and the full method beats the baseline at this scale.
        assert!(by_name["serial-overlap"] <= by_name["serial-naive"] * 1.001);
        assert!(by_name["pipelined"] <= by_name["serial-overlap"] * 1.001);
        assert!(by_name["pipelined"] < by_name["host-update"]);
    }
}
