//! The timed Smart-Infinity engine: SmartUpdate, the internal data-transfer
//! handler, SmartComp and the pipelined execution backend on the
//! discrete-event platform.

use crate::spec::MethodSpec;
use llm::Workload;
use optim::OptimizerKind;
use serde::{Deserialize, Serialize};
use simkit::SimError;
use ztrain::schedule::{build_iteration_graph, GraphKnobs, IterPhases, PlatformLowering, SiteMap};
use ztrain::{IterationReport, MachineConfig, TimedPlatform};

/// How the CSD-internal data transfer handler schedules tasklets
/// (paper Section IV-B, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandlerMode {
    /// Naive: each subgroup's load → update → write-back → upstream runs
    /// strictly sequentially, because a fresh device buffer is allocated per
    /// tasklet and must be released before the next one starts.
    Naive,
    /// Optimized: buffers are pre-allocated once and reused. The next
    /// subgroup's load starts as soon as the previous update finishes, the
    /// parameter write-back (urgent) proceeds immediately, and the remaining
    /// optimizer-state write-back is deferred and overlapped.
    Optimized,
}

/// Stage-level timing of one simulated iteration: the per-phase breakdown
/// plus how the pipelined stages occupied the shared host interconnect.
///
/// Produced by [`SmartInfinityEngine::simulate_iteration_stages`]. The
/// occupancy figures come from [`simkit::Timeline::link_busy_time_in_phase`]
/// over the fabric's host-uplink links, so they measure what the flows
/// actually did under contention — not an analytic estimate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PipelineTiming {
    /// The forward / backward / update phase breakdown.
    pub report: IterationReport,
    /// Seconds the *downstream* direction of the shared host interconnect
    /// carried gradient-offload flows (the pipeline's write stage).
    pub uplink_write_busy_s: f64,
    /// Seconds the *upstream* direction of the shared host interconnect
    /// carried parameter read-back flows (the pipeline's read-back stage).
    pub uplink_readback_busy_s: f64,
    /// Seconds of update-stage work that ran before the backward phase
    /// finished — the overlap the pipelined backend wins over the serial
    /// schedule (always 0 without pipelining).
    pub update_overlap_s: f64,
}

/// The timed model of a Smart-Infinity training iteration.
///
/// Construct with [`SmartInfinityEngine::new`], optionally select the naive
/// handler, enable SmartComp or enable the pipelined backend, then call
/// [`simulate_iteration`](SmartInfinityEngine::simulate_iteration).
#[derive(Debug, Clone)]
pub struct SmartInfinityEngine {
    machine: MachineConfig,
    workload: Workload,
    optimizer: OptimizerKind,
    handler: HandlerMode,
    /// Top-K keep ratio when SmartComp is enabled.
    keep_ratio: Option<f64>,
    /// Maximum number of parameters per FPGA subgroup (tasklet).
    subgroup_elems: usize,
    /// Whether the pipelined execution backend is modelled: each device's
    /// update chain starts as soon as *its own* shard gradients have landed,
    /// instead of waiting for the global end-of-backward barrier.
    pipelined: bool,
    /// Active fault-plan effects: a straggler FPGA and/or a derated uplink.
    fault_effects: Option<faultkit::TimedFaultEffects>,
}

impl SmartInfinityEngine {
    /// Default subgroup capacity: the largest parameter count whose working
    /// set (gradient + master + momentum + variance, 20 B/param with the FP16
    /// copy) fits comfortably in the SmartSSD's 4 GB FPGA DRAM.
    pub const DEFAULT_SUBGROUP_ELEMS: usize = 100_000_000;

    /// Per-tasklet overhead of the naive handler: OpenCL buffer allocation,
    /// registration for P2P and kernel launch before any byte can move
    /// (eliminated by the pre-allocating optimized handler).
    pub const NAIVE_TASKLET_OVERHEAD_S: f64 = 0.02;

    /// Creates an engine with the optimized handler and no compression.
    ///
    /// # Panics
    ///
    /// Panics if the machine's storage devices are not CSDs.
    pub fn new(machine: MachineConfig, workload: Workload, optimizer: OptimizerKind) -> Self {
        assert!(machine.is_csd(), "Smart-Infinity requires CSD storage devices");
        Self {
            machine,
            workload,
            optimizer,
            handler: HandlerMode::Optimized,
            keep_ratio: None,
            subgroup_elems: Self::DEFAULT_SUBGROUP_ELEMS,
            pipelined: false,
            fault_effects: None,
        }
    }

    /// Applies a fault plan's timed effects: the straggler device's FPGA
    /// kernels run slower and/or the shared host uplink is derated. Empty
    /// effects are a no-op, so the fault-free timing is untouched.
    #[must_use]
    pub fn with_fault_effects(mut self, effects: faultkit::TimedFaultEffects) -> Self {
        if !effects.is_empty() {
            self.fault_effects = Some(effects);
        }
        self
    }

    /// Selects the handler mode (naive corresponds to the paper's plain "SU").
    pub fn with_handler(mut self, handler: HandlerMode) -> Self {
        self.handler = handler;
        self
    }

    /// Configures the engine straight from a method's capability axes:
    /// `overlap` selects the handler, `compression` the keep ratio,
    /// `pipelined` the stage-overlapping schedule. This is the one place the
    /// timed view maps [`MethodSpec`] onto engine knobs; later builder calls
    /// (e.g. a [`HandlerMode`] ablation override) still win.
    ///
    /// # Panics
    ///
    /// Panics on an invalid keep ratio; validate the spec first
    /// ([`MethodSpec::validate`] — the session and experiment front doors
    /// always do).
    pub fn with_method_spec(mut self, spec: &MethodSpec) -> Self {
        self = self.with_handler(spec.implied_handler());
        if let Some(keep_ratio) = spec.keep_ratio() {
            self = self.with_compression(keep_ratio);
        }
        if spec.pipelined {
            self = self.with_pipelining();
        }
        self
    }

    /// Enables SmartComp with the given Top-K keep ratio.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn with_compression(mut self, keep_ratio: f64) -> Self {
        assert!(gradcomp::valid_keep_ratio(keep_ratio), "keep ratio must be in (0, 1]");
        self.keep_ratio = Some(keep_ratio);
        self
    }

    /// Overrides the subgroup (tasklet) capacity in parameters.
    ///
    /// # Panics
    ///
    /// Panics if `elems` is zero.
    pub fn with_subgroup_elems(mut self, elems: usize) -> Self {
        assert!(elems > 0, "subgroup capacity must be positive");
        self.subgroup_elems = elems;
        self
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The workload description.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The handler mode in use.
    pub fn handler(&self) -> HandlerMode {
        self.handler
    }

    /// The SmartComp keep ratio, if compression is enabled.
    pub fn keep_ratio(&self) -> Option<f64> {
        self.keep_ratio
    }

    /// Enables the pipelined execution backend: gradient offload targets the
    /// devices that actually own each block's flattened parameters, and every
    /// device's near-storage update chain starts as soon as its own shard
    /// gradients have landed — so the update stage overlaps the remaining
    /// backward offload and the shared uplink is contended *per stage*
    /// instead of per step.
    pub fn with_pipelining(mut self) -> Self {
        self.pipelined = true;
        self
    }

    /// Whether the pipelined backend is modelled.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Simulates one training iteration and returns the phase breakdown.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation kernel.
    pub fn simulate_iteration(&self) -> Result<IterationReport, SimError> {
        Ok(self.simulate_iteration_stages()?.report)
    }

    /// Simulates one training iteration and additionally reports the
    /// stage-level occupancy of the shared host interconnect (see
    /// [`PipelineTiming`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation kernel.
    pub fn simulate_iteration_stages(&self) -> Result<PipelineTiming, SimError> {
        let mut plat = TimedPlatform::new_with_faults(&self.machine, self.fault_effects.as_ref());
        let phases = IterPhases {
            forward: plat.add_phase("forward"),
            backward: plat.add_phase("backward+grad_offload"),
            update: plat.add_phase("update+opt_transfer"),
        };
        let bw_phase = phases.backward;
        let up_phase = phases.update;
        let sites = SiteMap::new(plat.num_gpus(), plat.num_devices());
        let knobs = GraphKnobs::in_storage(self.keep_ratio, self.subgroup_elems);
        let graph = build_iteration_graph(&self.workload, sites, self.optimizer, &knobs, phases);
        let resources = plat.resource_catalog();
        // The method schedule: striped vs owner-routed gradient scatters,
        // sequential vs overlapped tasklet chains — see `crate::sched`.
        let mut scheduler =
            crate::sched::method_scheduler(self.handler, self.pipelined, &graph.layout);
        let outcome = {
            let mut lowering = PlatformLowering::new(&mut plat);
            simkit::execute(&graph.dag, &resources, scheduler.as_mut(), &mut lowering)?
        };
        let (uplink_down, uplink_up) = plat.host_uplink_links();

        let timeline = plat.run()?;
        let finish = |id| {
            let task = outcome.task(id).expect("executor schedules every DAG task");
            timeline.finish_time(task)
        };
        let t_fw = finish(graph.layout.fw_end);
        let t_bw = finish(graph.layout.bw_end);
        let t_end =
            finish(graph.layout.phase_end.expect("in-storage graphs carry an iteration end"));
        Ok(PipelineTiming {
            report: IterationReport::new(t_fw, t_bw - t_fw, t_end - t_bw),
            uplink_write_busy_s: timeline.link_busy_time_in_phase(uplink_down, bw_phase),
            uplink_readback_busy_s: timeline.link_busy_time_in_phase(uplink_up, up_phase),
            // Actual update-stage work (union of its task intervals) that ran
            // before the backward phase finished — not the idle-inclusive
            // window since the first update task started.
            update_overlap_s: timeline.phase_busy_time_before(up_phase, t_bw),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelConfig;
    use ztrain::BaselineEngine;

    fn workload() -> Workload {
        Workload::paper_default(ModelConfig::gpt2_4b())
    }

    fn engine(n_csds: usize) -> SmartInfinityEngine {
        SmartInfinityEngine::new(
            MachineConfig::smart_infinity(n_csds),
            workload(),
            OptimizerKind::Adam,
        )
    }

    #[test]
    #[should_panic(expected = "requires CSD storage")]
    fn plain_ssd_machine_is_rejected() {
        SmartInfinityEngine::new(MachineConfig::baseline_raid0(4), workload(), OptimizerKind::Adam);
    }

    #[test]
    fn builders_record_configuration() {
        let e = engine(4).with_handler(HandlerMode::Naive).with_compression(0.05);
        assert_eq!(e.handler(), HandlerMode::Naive);
        assert_eq!(e.keep_ratio(), Some(0.05));
        assert_eq!(e.machine().num_devices, 4);
        assert_eq!(e.workload().batch_size(), 4);
    }

    #[test]
    fn optimized_handler_is_at_least_as_fast_as_naive() {
        let naive = engine(6).with_handler(HandlerMode::Naive).simulate_iteration().unwrap();
        let optimized =
            engine(6).with_handler(HandlerMode::Optimized).simulate_iteration().unwrap();
        assert!(optimized.update_s <= naive.update_s * 1.001);
        assert!(optimized.update_s < naive.update_s, "overlap must buy something");
    }

    #[test]
    fn compression_shrinks_the_backward_offload() {
        let plain = engine(10).simulate_iteration().unwrap();
        let compressed = engine(10).with_compression(0.01).simulate_iteration().unwrap();
        assert!(compressed.backward_s < plain.backward_s);
        assert!(compressed.total_s() < plain.total_s());
    }

    #[test]
    fn smart_infinity_scales_with_csds_while_baseline_does_not() {
        let total = |n: usize| engine(n).simulate_iteration().unwrap().total_s();
        let t2 = total(2);
        let t4 = total(4);
        let t8 = total(8);
        assert!(t2 / t4 > 1.25, "2 -> 4 CSDs: {t2:.2} vs {t4:.2}");
        assert!(t4 / t8 > 1.15, "4 -> 8 CSDs: {t4:.2} vs {t8:.2}");
    }

    #[test]
    fn single_csd_is_not_faster_than_the_single_ssd_baseline() {
        // Paper Section VII-E: with one CSD there is no aggregate-bandwidth
        // benefit and a slight slowdown is expected.
        let base =
            BaselineEngine::new(MachineConfig::baseline_raid0(1), workload(), OptimizerKind::Adam)
                .simulate_iteration()
                .unwrap();
        let smart = engine(1).simulate_iteration().unwrap();
        let speedup = smart.speedup_over(&base);
        assert!(speedup <= 1.02, "single-CSD speedup should not exceed ~1x, got {speedup:.2}");
        assert!(speedup > 0.6, "the slowdown should be bounded, got {speedup:.2}");
    }

    #[test]
    fn pipelining_overlaps_update_with_backward() {
        let serial = engine(6).simulate_iteration_stages().unwrap();
        let pipe = engine(6).with_pipelining().simulate_iteration_stages().unwrap();
        assert!(!engine(6).is_pipelined());
        assert!(engine(6).with_pipelining().is_pipelined());
        // The serial schedule starts every update at the end-of-backward
        // barrier; the pipelined schedule starts each device as soon as its
        // own shard gradients landed.
        assert_eq!(serial.update_overlap_s, 0.0);
        assert!(pipe.update_overlap_s > 0.0, "no overlap: {pipe:?}");
        assert!(
            pipe.report.total_s() < serial.report.total_s(),
            "overlap must buy something: {} vs {}",
            pipe.report.total_s(),
            serial.report.total_s()
        );
        // Stage bytes are charged over the fabric's shared uplink: the write
        // stage occupies the downstream direction, the read-back stage the
        // upstream direction, in both schedules.
        for timing in [&serial, &pipe] {
            assert!(timing.uplink_write_busy_s > 0.0);
            assert!(timing.uplink_readback_busy_s > 0.0);
        }
        // simulate_iteration is the stages run's phase report.
        let report = engine(6).with_pipelining().simulate_iteration().unwrap();
        assert_eq!(report, pipe.report);
    }

    #[test]
    fn pipelining_composes_with_compression_and_the_naive_handler() {
        let pipe = engine(8).with_pipelining().simulate_iteration().unwrap();
        let pipe_comp = engine(8).with_pipelining().with_compression(0.01);
        assert!(pipe_comp.is_pipelined());
        assert_eq!(pipe_comp.keep_ratio(), Some(0.01));
        let pipe_comp = pipe_comp.simulate_iteration().unwrap();
        assert!(pipe_comp.total_s() < pipe.total_s(), "compression still helps when pipelined");
        // The naive handler's per-tasklet overhead hurts the pipelined
        // schedule exactly like the serial one.
        let naive =
            engine(8).with_pipelining().with_handler(HandlerMode::Naive).simulate_iteration();
        assert!(naive.unwrap().total_s() > pipe.total_s());
    }

    #[test]
    fn update_phase_no_longer_dominates_with_many_csds() {
        let report = engine(10).with_compression(0.01).simulate_iteration().unwrap();
        assert!(
            report.update_fraction() < 0.7,
            "update should no longer take >70% of the iteration, got {:.2}",
            report.update_fraction()
        );
    }
}
