//! The timed Smart-Infinity engine: SmartUpdate, the internal data-transfer
//! handler and SmartComp on the discrete-event platform.

use llm::Workload;
use optim::OptimizerKind;
use serde::{Deserialize, Serialize};
use simkit::{PhaseId, SimError, TaskId};
use tensorlib::{Chunker, Partitioner};
use ztrain::{
    build_backward_compute, build_forward, IterationReport, MachineConfig, TimedPlatform,
};

/// How the CSD-internal data transfer handler schedules tasklets
/// (paper Section IV-B, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandlerMode {
    /// Naive: each subgroup's load → update → write-back → upstream runs
    /// strictly sequentially, because a fresh device buffer is allocated per
    /// tasklet and must be released before the next one starts.
    Naive,
    /// Optimized: buffers are pre-allocated once and reused. The next
    /// subgroup's load starts as soon as the previous update finishes, the
    /// parameter write-back (urgent) proceeds immediately, and the remaining
    /// optimizer-state write-back is deferred and overlapped.
    Optimized,
}

/// The timed model of a Smart-Infinity training iteration.
///
/// Construct with [`SmartInfinityEngine::new`], optionally select the naive
/// handler or enable SmartComp, then call
/// [`simulate_iteration`](SmartInfinityEngine::simulate_iteration).
#[derive(Debug, Clone)]
pub struct SmartInfinityEngine {
    machine: MachineConfig,
    workload: Workload,
    optimizer: OptimizerKind,
    handler: HandlerMode,
    /// Top-K keep ratio when SmartComp is enabled.
    keep_ratio: Option<f64>,
    /// Maximum number of parameters per FPGA subgroup (tasklet).
    subgroup_elems: usize,
}

impl SmartInfinityEngine {
    /// Default subgroup capacity: the largest parameter count whose working
    /// set (gradient + master + momentum + variance, 20 B/param with the FP16
    /// copy) fits comfortably in the SmartSSD's 4 GB FPGA DRAM.
    pub const DEFAULT_SUBGROUP_ELEMS: usize = 100_000_000;

    /// Per-tasklet overhead of the naive handler: OpenCL buffer allocation,
    /// registration for P2P and kernel launch before any byte can move
    /// (eliminated by the pre-allocating optimized handler).
    pub const NAIVE_TASKLET_OVERHEAD_S: f64 = 0.02;

    /// Creates an engine with the optimized handler and no compression.
    ///
    /// # Panics
    ///
    /// Panics if the machine's storage devices are not CSDs.
    pub fn new(machine: MachineConfig, workload: Workload, optimizer: OptimizerKind) -> Self {
        assert!(machine.is_csd(), "Smart-Infinity requires CSD storage devices");
        Self {
            machine,
            workload,
            optimizer,
            handler: HandlerMode::Optimized,
            keep_ratio: None,
            subgroup_elems: Self::DEFAULT_SUBGROUP_ELEMS,
        }
    }

    /// Selects the handler mode (naive corresponds to the paper's plain "SU").
    pub fn with_handler(mut self, handler: HandlerMode) -> Self {
        self.handler = handler;
        self
    }

    /// Enables SmartComp with the given Top-K keep ratio.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn with_compression(mut self, keep_ratio: f64) -> Self {
        assert!(gradcomp::valid_keep_ratio(keep_ratio), "keep ratio must be in (0, 1]");
        self.keep_ratio = Some(keep_ratio);
        self
    }

    /// Overrides the subgroup (tasklet) capacity in parameters.
    ///
    /// # Panics
    ///
    /// Panics if `elems` is zero.
    pub fn with_subgroup_elems(mut self, elems: usize) -> Self {
        assert!(elems > 0, "subgroup capacity must be positive");
        self.subgroup_elems = elems;
        self
    }

    /// The machine description.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The workload description.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The handler mode in use.
    pub fn handler(&self) -> HandlerMode {
        self.handler
    }

    /// The SmartComp keep ratio, if compression is enabled.
    pub fn keep_ratio(&self) -> Option<f64> {
        self.keep_ratio
    }

    /// Simulates one training iteration and returns the phase breakdown.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the simulation kernel.
    pub fn simulate_iteration(&self) -> Result<IterationReport, SimError> {
        let mut plat = TimedPlatform::new(&self.machine);
        let fw_phase = plat.add_phase("forward");
        let bw_phase = plat.add_phase("backward+grad_offload");
        let up_phase = plat.add_phase("update+opt_transfer");

        let fw_end = build_forward(&mut plat, &self.workload, fw_phase, &[]);
        let bw_end = self.build_backward_with_csd_offload(&mut plat, bw_phase, &[fw_end]);
        let up_end = self.build_smart_update(&mut plat, up_phase, &[bw_end]);

        let timeline = plat.run()?;
        let t_fw = timeline.finish_time(fw_end);
        let t_bw = timeline.finish_time(bw_end);
        let t_up = timeline.finish_time(up_end);
        Ok(IterationReport::new(t_fw, t_bw - t_fw, t_up - t_bw))
    }

    /// Fraction of the dense gradient volume that crosses the interconnect
    /// during gradient offload (1.0 without SmartComp, `2·keep_ratio` with it).
    fn gradient_transfer_ratio(&self) -> f64 {
        self.keep_ratio.map_or(1.0, |k| (2.0 * k).min(1.0))
    }

    /// Backward pass with gradient offload to the owner CSDs. With SmartComp
    /// the GPU first compresses each block's gradients (a GPU compute task)
    /// and only the compressed stream is offloaded.
    fn build_backward_with_csd_offload(
        &self,
        plat: &mut TimedPlatform,
        phase: PhaseId,
        deps: &[TaskId],
    ) -> TaskId {
        let compute_end = build_backward_compute(plat, &self.workload, phase, deps);
        let n_dev = plat.num_devices();
        let transfer_ratio = self.gradient_transfer_ratio();
        let blocks = self.workload.block_bytes_fp16();
        let mut prev: Option<TaskId> = None;
        let mut all = vec![compute_end];
        for block_m in blocks {
            let block_m = block_m as f64;
            let dense_grad_bytes = 2.0 * block_m;
            let mut stage_deps: Vec<TaskId> = deps.to_vec();
            if let Some(p) = prev {
                stage_deps.push(p);
            }
            // SmartComp: sort/select on the GPU before offloading. The cost is
            // modelled as a few extra passes over the block's gradients at the
            // GPU's effective throughput.
            let stage_src = if self.keep_ratio.is_some() {
                let sort_flops = 16.0 * (block_m / 2.0);
                let compress = plat.gpu_compute(0, sort_flops, &stage_deps, phase);
                plat.gpu_to_host(0, block_m * transfer_ratio.max(0.02), &[compress], phase)
            } else {
                plat.gpu_to_host(0, block_m, &stage_deps, phase)
            };
            // The (possibly compressed) gradients are scattered to the CSDs
            // that own the corresponding flattened parameters.
            let writes: Vec<TaskId> = (0..n_dev)
                .map(|d| {
                    plat.host_to_ssd(
                        d,
                        dense_grad_bytes * transfer_ratio / n_dev as f64,
                        &[stage_src],
                        phase,
                    )
                })
                .collect();
            let done = plat.barrier(&writes);
            prev = Some(done);
            all.push(done);
        }
        plat.barrier(&all)
    }

    /// The SmartUpdate phase: every CSD updates its shard of the flattened
    /// parameters subgroup by subgroup using CSD-internal P2P transfers, and
    /// streams the refreshed FP16 parameters upstream to host memory.
    fn build_smart_update(
        &self,
        plat: &mut TimedPlatform,
        phase: PhaseId,
        deps: &[TaskId],
    ) -> TaskId {
        let n_dev = plat.num_devices();
        let total_params = self.workload.model().num_params() as usize;
        let partitioner = Partitioner::contiguous(total_params, n_dev);
        let state_bytes_per_param = self.optimizer.state_bytes_per_param() as f64;
        let transfer_ratio = self.gradient_transfer_ratio();
        let mut phase_end_tasks: Vec<TaskId> = Vec::new();

        for dev in 0..n_dev {
            let shard = partitioner.shard(dev);
            if shard.len == 0 {
                continue;
            }
            let chunker = Chunker::new(shard.len, self.subgroup_elems);
            let mut prev_update: Option<TaskId> = None;
            let mut prev_chain_end: Option<TaskId> = None;
            for subgroup in chunker.subgroups() {
                let elems = subgroup.len as f64;
                let state_bytes = elems * state_bytes_per_param;
                let grad_load_bytes = elems * 4.0 * transfer_ratio;
                let dense_grad_bytes = elems * 4.0;
                let param_writeback_bytes = elems * 4.0; // FP32 master copy (urgent)
                let deferred_state_bytes = state_bytes - param_writeback_bytes; // momentum, variance, ...
                let upstream_bytes = elems * 2.0; // FP16 parameters to host memory

                // When can this subgroup's load start?
                let mut load_deps: Vec<TaskId> = deps.to_vec();
                match self.handler {
                    HandlerMode::Optimized => {
                        // Buffer reuse: load as soon as the previous update freed the buffers.
                        if let Some(p) = prev_update {
                            load_deps.push(p);
                        }
                    }
                    HandlerMode::Naive => {
                        // Fresh buffers per tasklet: wait for the whole previous
                        // chain to drain, then pay the device-buffer
                        // (re)allocation and kernel-launch overhead.
                        let mut alloc_deps: Vec<TaskId> = deps.to_vec();
                        if let Some(p) = prev_chain_end {
                            alloc_deps.push(p);
                        }
                        let alloc = plat.delay(Self::NAIVE_TASKLET_OVERHEAD_S, &alloc_deps, phase);
                        load_deps.push(alloc);
                    }
                }

                // 1. P2P load of gradients + optimizer states (SSD -> FPGA).
                let load = plat.ssd_to_fpga(dev, state_bytes + grad_load_bytes, &load_deps, phase);
                // 2. Decompression (SmartComp only), then the update kernel.
                let update_dep = if self.keep_ratio.is_some() {
                    plat.fpga_decompress(dev, dense_grad_bytes, &[load], phase)
                } else {
                    load
                };
                let update =
                    plat.fpga_update(dev, state_bytes + dense_grad_bytes, &[update_dep], phase);
                // 3. Urgent write-back of the parameters, then upstream to host.
                let wb_param = plat.fpga_to_ssd(dev, param_writeback_bytes, &[update], phase);
                let upstream = plat.ssd_to_host(dev, upstream_bytes, &[wb_param], phase);
                // 4. Deferred write-back of the remaining optimizer states.
                let wb_state_deps = match self.handler {
                    HandlerMode::Optimized => vec![update],
                    HandlerMode::Naive => vec![wb_param],
                };
                let wb_state = plat.fpga_to_ssd(dev, deferred_state_bytes, &wb_state_deps, phase);

                let chain_end = plat.barrier(&[upstream, wb_state]);
                prev_update = Some(update);
                prev_chain_end = Some(chain_end);
                phase_end_tasks.push(chain_end);
            }
        }
        plat.barrier(&phase_end_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelConfig;
    use ztrain::BaselineEngine;

    fn workload() -> Workload {
        Workload::paper_default(ModelConfig::gpt2_4b())
    }

    fn engine(n_csds: usize) -> SmartInfinityEngine {
        SmartInfinityEngine::new(
            MachineConfig::smart_infinity(n_csds),
            workload(),
            OptimizerKind::Adam,
        )
    }

    #[test]
    #[should_panic(expected = "requires CSD storage")]
    fn plain_ssd_machine_is_rejected() {
        SmartInfinityEngine::new(MachineConfig::baseline_raid0(4), workload(), OptimizerKind::Adam);
    }

    #[test]
    fn builders_record_configuration() {
        let e = engine(4).with_handler(HandlerMode::Naive).with_compression(0.05);
        assert_eq!(e.handler(), HandlerMode::Naive);
        assert_eq!(e.keep_ratio(), Some(0.05));
        assert_eq!(e.machine().num_devices, 4);
        assert_eq!(e.workload().batch_size(), 4);
    }

    #[test]
    fn optimized_handler_is_at_least_as_fast_as_naive() {
        let naive = engine(6).with_handler(HandlerMode::Naive).simulate_iteration().unwrap();
        let optimized =
            engine(6).with_handler(HandlerMode::Optimized).simulate_iteration().unwrap();
        assert!(optimized.update_s <= naive.update_s * 1.001);
        assert!(optimized.update_s < naive.update_s, "overlap must buy something");
    }

    #[test]
    fn compression_shrinks_the_backward_offload() {
        let plain = engine(10).simulate_iteration().unwrap();
        let compressed = engine(10).with_compression(0.01).simulate_iteration().unwrap();
        assert!(compressed.backward_s < plain.backward_s);
        assert!(compressed.total_s() < plain.total_s());
    }

    #[test]
    fn smart_infinity_scales_with_csds_while_baseline_does_not() {
        let total = |n: usize| engine(n).simulate_iteration().unwrap().total_s();
        let t2 = total(2);
        let t4 = total(4);
        let t8 = total(8);
        assert!(t2 / t4 > 1.25, "2 -> 4 CSDs: {t2:.2} vs {t4:.2}");
        assert!(t4 / t8 > 1.15, "4 -> 8 CSDs: {t4:.2} vs {t8:.2}");
    }

    #[test]
    fn single_csd_is_not_faster_than_the_single_ssd_baseline() {
        // Paper Section VII-E: with one CSD there is no aggregate-bandwidth
        // benefit and a slight slowdown is expected.
        let base =
            BaselineEngine::new(MachineConfig::baseline_raid0(1), workload(), OptimizerKind::Adam)
                .simulate_iteration()
                .unwrap();
        let smart = engine(1).simulate_iteration().unwrap();
        let speedup = smart.speedup_over(&base);
        assert!(speedup <= 1.02, "single-CSD speedup should not exceed ~1x, got {speedup:.2}");
        assert!(speedup > 0.6, "the slowdown should be bounded, got {speedup:.2}");
    }

    #[test]
    fn update_phase_no_longer_dominates_with_many_csds() {
        let report = engine(10).with_compression(0.01).simulate_iteration().unwrap();
        assert!(
            report.update_fraction() < 0.7,
            "update should no longer take >70% of the iteration, got {:.2}",
            report.update_fraction()
        );
    }
}
