//! The composable run-specification layer: every training configuration as
//! plain, serde-serializable data.
//!
//! The paper's method space is a product of orthogonal features — storage
//! offload, in-CSD update (SmartUpdate), the optimized internal transfer
//! handler, cross-CSD pipelining, and SmartComp gradient compression with a
//! choice of selectors. The closed [`Method`] enum enumerated the paper's
//! ablation points of that space, which meant every new axis doubled the
//! variant count and every consumer re-matched the variants by hand.
//!
//! [`MethodSpec`] replaces the enumeration with the axes themselves: five
//! capability fields that compose freely, validated centrally
//! ([`MethodSpec::validate`] returns [`TrainError::Config`] instead of a
//! substrate panic), and printed with the paper's figure labels
//! (`BASE`, `SU`, `SU+O`, `SU+O+C(2%)`, `SU+O+P`, ...). The old enum remains
//! as a thin compatibility shim: `MethodSpec::from(method)` maps every
//! variant onto the axes, and both types `Display` the same labels.
//!
//! [`RunSpec`] lifts the rest of a run into data — model and machine presets,
//! optimizer, thread count, handler override, subgroup capacity, workload —
//! so a whole experiment is one JSON document (see the checked-in
//! `specs/*.json`) that [`RunSpec::from_json`] loads and
//! [`RunSpec::session`] turns into a ready [`Session`]. Sweeps over lists of
//! specs run concurrently through [`crate::Campaign`].

use crate::engine_timed::HandlerMode;
use crate::experiment::Method;
use crate::session::Session;
use faultkit::FaultSpec;
use gradcomp::{Compressor, SelectionMethod};
use llm::{ModelConfig, Workload};
use optim::{HyperParams, Optimizer, OptimizerKind};
use serde::{de, Deserialize, Serialize, Value};
use std::fmt;
use ztrain::{MachineConfig, TrainError};

// ---------------------------------------------------------------------------
// MethodSpec: the orthogonal capability axes
// ---------------------------------------------------------------------------

/// SmartComp gradient compression: how much to keep and how to select it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionSpec {
    /// Fraction of gradient elements kept by the selection, in `(0, 1]`
    /// (the paper's default 0.01 is reported as a "2%" transfer ratio,
    /// because every kept element carries an index and a value).
    pub keep_ratio: f64,
    /// How the kept coordinates are chosen. Omitted (`None`) means exact
    /// Top-K by magnitude — the paper's selector.
    pub selection: Option<SelectionMethod>,
}

impl CompressionSpec {
    /// Exact Top-K compression at `keep_ratio` (the paper's configuration).
    pub fn top_k(keep_ratio: f64) -> Self {
        CompressionSpec { keep_ratio, selection: None }
    }

    /// Replaces the coordinate selector.
    pub fn with_selection(mut self, selection: SelectionMethod) -> Self {
        self.selection = Some(selection);
        self
    }

    /// The effective selector: the explicit choice, or exact Top-K.
    pub fn selection_method(&self) -> SelectionMethod {
        self.selection.unwrap_or(SelectionMethod::TopK)
    }

    /// Builds the matching functional compressor.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid; call [`CompressionSpec::validate`]
    /// first (the session and campaign front doors always do).
    pub fn compressor(&self) -> Compressor {
        Compressor::new(self.keep_ratio, self.selection_method())
    }

    /// Checks the knobs that the substrates would otherwise panic on.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for an out-of-range keep ratio or a
    /// zero threshold sample size.
    pub fn validate(&self) -> Result<(), TrainError> {
        if !gradcomp::valid_keep_ratio(self.keep_ratio) {
            return Err(TrainError::config(format!(
                "compression keep ratio must be in (0, 1], got {}",
                self.keep_ratio
            )));
        }
        if let Some(SelectionMethod::ThresholdTopK { sample_size: 0 }) = self.selection {
            return Err(TrainError::config("threshold Top-K needs a positive sample size"));
        }
        Ok(())
    }
}

/// One training method as its orthogonal capability axes.
///
/// The paper's ladder is a walk through this space:
///
/// | Label | `offload` | `in_storage_update` | `overlap` | `pipelined` | `compression` |
/// |---|---|---|---|---|---|
/// | `BASE` | ✓ | | | | |
/// | `SU` | ✓ | ✓ | | | |
/// | `SU+O` | ✓ | ✓ | ✓ | | |
/// | `SU+O+C(2%)` | ✓ | ✓ | ✓ | | 1% Top-K |
/// | `SU+O+P` | ✓ | ✓ | ✓ | ✓ | |
/// | `SU+O+P+C(2%)` | ✓ | ✓ | ✓ | ✓ | 1% Top-K |
///
/// Combinations outside the ladder compose too (e.g. compression under the
/// naive handler, the ablation [`crate::SessionBuilder::with_handler`] used
/// to need a special case for). Impossible combinations are rejected by
/// [`MethodSpec::validate`] as [`TrainError::Config`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodSpec {
    /// Parameters and optimizer states live on storage devices (ZeRO-Infinity
    /// style). This reproduction models storage-offloaded training only, so
    /// `false` is rejected; the axis exists so future host-memory baselines
    /// are a field away, not an enum redesign away.
    pub offload: bool,
    /// SmartUpdate: the optimizer update runs inside the CSDs, so optimizer
    /// states never cross the shared host interconnect (paper Section IV-A).
    pub in_storage_update: bool,
    /// The optimized internal data-transfer handler: per-subgroup buffers are
    /// pre-allocated and reused, overlapping loads with updates
    /// (paper Section IV-B). Requires `in_storage_update`.
    pub overlap: bool,
    /// The pipelined execution backend: per-device write → compress/update →
    /// read-back lanes overlap across CSDs (Sections IV-B/IV-D). Requires
    /// `overlap`.
    pub pipelined: bool,
    /// SmartComp gradient compression (paper Section IV-C). Requires
    /// `in_storage_update`.
    pub compression: Option<CompressionSpec>,
}

impl MethodSpec {
    /// `BASE`: ZeRO-Infinity with software RAID0 and CPU updates.
    pub fn baseline() -> Self {
        MethodSpec {
            offload: true,
            in_storage_update: false,
            overlap: false,
            pipelined: false,
            compression: None,
        }
    }

    /// `SU`: SmartUpdate with the naive per-tasklet buffer handling.
    pub fn smart_update() -> Self {
        MethodSpec { in_storage_update: true, ..Self::baseline() }
    }

    /// `SU+O`: SmartUpdate with the optimized internal transfer handler.
    pub fn smart_update_optimized() -> Self {
        MethodSpec { overlap: true, ..Self::smart_update() }
    }

    /// `SU+O+C`: optimized SmartUpdate plus Top-K gradient compression.
    pub fn smart_comp(keep_ratio: f64) -> Self {
        Self::smart_update_optimized().with_compression(CompressionSpec::top_k(keep_ratio))
    }

    /// `SU+O+P`: the pipelined execution backend, optionally compressed
    /// (`SU+O+P+C`).
    pub fn pipelined(keep_ratio: Option<f64>) -> Self {
        let spec = MethodSpec { pipelined: true, ..Self::smart_update_optimized() };
        match keep_ratio {
            Some(keep_ratio) => spec.with_compression(CompressionSpec::top_k(keep_ratio)),
            None => spec,
        }
    }

    /// Adds gradient compression to this method.
    pub fn with_compression(mut self, compression: CompressionSpec) -> Self {
        self.compression = Some(compression);
        self
    }

    /// The paper's default ablation ladder: BASE, SU, SU+O, SU+O+C (2%).
    pub fn ladder() -> Vec<MethodSpec> {
        vec![
            Self::baseline(),
            Self::smart_update(),
            Self::smart_update_optimized(),
            Self::smart_comp(0.01),
        ]
    }

    /// Whether this method runs on CSDs (any in-storage capability) rather
    /// than the plain-SSD RAID0 baseline.
    pub fn uses_csds(&self) -> bool {
        self.in_storage_update
    }

    /// The keep ratio of the compression axis, if enabled.
    pub fn keep_ratio(&self) -> Option<f64> {
        self.compression.map(|c| c.keep_ratio)
    }

    /// The handler mode this method implies (the ablation override in
    /// [`crate::SessionBuilder::with_handler`] can still replace it).
    pub fn implied_handler(&self) -> HandlerMode {
        if self.overlap {
            HandlerMode::Optimized
        } else {
            HandlerMode::Naive
        }
    }

    /// Checks that the capability axes compose into a runnable method.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] when the combination has no substrate
    /// (no offload, CSD capabilities without `in_storage_update`, pipelining
    /// without the optimized handler) or the compression knobs are invalid.
    pub fn validate(&self) -> Result<(), TrainError> {
        if !self.offload {
            return Err(TrainError::config(
                "offload must be true: this reproduction models storage-offloaded training \
                 (the host-memory path has no substrate)",
            ));
        }
        if !self.in_storage_update {
            if self.overlap || self.pipelined {
                return Err(TrainError::config(
                    "overlap/pipelined are in-storage capabilities: enable in_storage_update",
                ));
            }
            if self.compression.is_some() {
                return Err(TrainError::config(
                    "gradient compression runs in the CSDs: enable in_storage_update",
                ));
            }
        }
        if self.pipelined && !self.overlap {
            return Err(TrainError::config(
                "the pipelined backend builds on the optimized handler: enable overlap",
            ));
        }
        if let Some(compression) = &self.compression {
            compression.validate()?;
        }
        Ok(())
    }
}

/// The paper's figure labels, composed from the enabled axes:
/// `BASE`, or `SU` `[+O]` `[+P]` `[+C(x%)]` where `x` is the *transfer*
/// ratio (twice the keep ratio, because every kept element carries an index
/// and a value).
impl fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.in_storage_update {
            return f.write_str("BASE");
        }
        f.write_str("SU")?;
        if self.overlap {
            f.write_str("+O")?;
        }
        if self.pipelined {
            f.write_str("+P")?;
        }
        if let Some(compression) = &self.compression {
            write!(f, "+C({}%)", (compression.keep_ratio * 2.0 * 100.0).round())?;
        }
        Ok(())
    }
}

/// Every closed-enum method maps onto the capability axes; this is the
/// compatibility shim that keeps [`Method`]-based call sites working.
impl From<Method> for MethodSpec {
    fn from(method: Method) -> Self {
        match method {
            Method::Baseline => MethodSpec::baseline(),
            Method::SmartUpdate => MethodSpec::smart_update(),
            Method::SmartUpdateOptimized => MethodSpec::smart_update_optimized(),
            Method::SmartComp { keep_ratio } => MethodSpec::smart_comp(keep_ratio),
            Method::SmartInfinityPipelined { keep_ratio } => MethodSpec::pipelined(keep_ratio),
        }
    }
}

impl From<&Method> for MethodSpec {
    fn from(method: &Method) -> Self {
        MethodSpec::from(*method)
    }
}

// ---------------------------------------------------------------------------
// Model / machine / workload specs: the declarative halves of a run
// ---------------------------------------------------------------------------

/// A model reference that serializes compactly: a preset name (the paper's
/// table of models) or a scaled synthetic GPT-2.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// One of the paper's models by name, matched case-insensitively
    /// (e.g. `"GPT2-4.0B"`; see [`ModelSpec::preset_names`]).
    Preset(String),
    /// A synthetic GPT-2 scaled to approximately this many billions of
    /// parameters ([`ModelConfig::gpt2_scaled`]).
    ScaledGpt2 {
        /// Approximate parameter count in billions (min 0.001).
        billions: f64,
    },
}

/// One entry of the model-preset registry: a name and its constructor.
type ModelPreset = (&'static str, fn() -> ModelConfig);

/// The preset registry: every named model constructor of [`ModelConfig`].
fn model_presets() -> &'static [ModelPreset] {
    &[
        ("GPT2-0.34B", ModelConfig::gpt2_0_34b),
        ("GPT2-0.77B", ModelConfig::gpt2_0_77b),
        ("GPT2-1.16B", ModelConfig::gpt2_1_16b),
        ("GPT2-1.6B", ModelConfig::gpt2_1_6b),
        ("GPT2-1.7B", ModelConfig::gpt2_1_7b),
        ("GPT2-2.5B", ModelConfig::gpt2_2_5b),
        ("GPT2-4.0B", ModelConfig::gpt2_4b),
        ("GPT2-8.3B", ModelConfig::gpt2_8_3b),
        ("GPT2-8.4B", ModelConfig::gpt2_8_4b),
        ("GPT2-16.6B", ModelConfig::gpt2_16_6b),
        ("GPT2-20.5B", ModelConfig::gpt2_20_5b),
        ("GPT2-24.8B", ModelConfig::gpt2_24_8b),
        ("GPT2-33.0B", ModelConfig::gpt2_33b),
        ("BERT-0.34B", ModelConfig::bert_0_34b),
        ("BERT-4.0B", ModelConfig::bert_4b),
        ("BERT-8.3B", ModelConfig::bert_8_3b),
        ("BLOOM-3B", ModelConfig::bloom_3b),
        ("BLOOM-7.1B", ModelConfig::bloom_7_1b),
        ("ViT-0.30B", ModelConfig::vit_0_30b),
        ("ViT-0.63B", ModelConfig::vit_0_63b),
    ]
}

impl ModelSpec {
    /// A preset reference by name.
    pub fn preset(name: impl Into<String>) -> Self {
        ModelSpec::Preset(name.into())
    }

    /// The names accepted by [`ModelSpec::Preset`], in registry order.
    pub fn preset_names() -> Vec<&'static str> {
        model_presets().iter().map(|(name, _)| *name).collect()
    }

    /// Builds the concrete model configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for an unknown preset name or an
    /// out-of-range scale.
    pub fn resolve(&self) -> Result<ModelConfig, TrainError> {
        match self {
            ModelSpec::Preset(name) => model_presets()
                .iter()
                .find(|(preset, _)| preset.eq_ignore_ascii_case(name))
                .map(|(_, build)| build())
                .ok_or_else(|| {
                    TrainError::config(format!(
                        "unknown model preset `{name}` (expected one of: {})",
                        Self::preset_names().join(", ")
                    ))
                }),
            ModelSpec::ScaledGpt2 { billions } => {
                if !(billions.is_finite() && *billions >= 0.001) {
                    return Err(TrainError::config(format!(
                        "scaled GPT-2 size must be at least 0.001 billion parameters, \
                         got {billions}"
                    )));
                }
                Ok(ModelConfig::gpt2_scaled(billions * 1e9))
            }
        }
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelSpec::Preset(name) => f.write_str(name),
            ModelSpec::ScaledGpt2 { billions } => write!(f, "GPT2-scaled({billions}B)"),
        }
    }
}

/// Hand-written so presets stay a bare JSON string (`"model": "GPT2-4.0B"`)
/// instead of the externally-tagged `{"Preset": ...}` the derive would emit.
impl Serialize for ModelSpec {
    fn write_json(&self, out: &mut String) {
        match self {
            ModelSpec::Preset(name) => name.write_json(out),
            ModelSpec::ScaledGpt2 { billions } => {
                out.push_str("{\"scaled_gpt2_billions\":");
                billions.write_json(out);
                out.push('}');
            }
        }
    }
}

impl Deserialize for ModelSpec {
    fn read_json(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(name) => Ok(ModelSpec::Preset(name.clone())),
            Value::Object(pairs) => {
                de::deny_unknown(pairs, &["scaled_gpt2_billions"], "ModelSpec")?;
                Ok(ModelSpec::ScaledGpt2 {
                    billions: de::field(pairs, "scaled_gpt2_billions", "ModelSpec")?,
                })
            }
            other => Err(de::Error::expected(
                "a preset name or {\"scaled_gpt2_billions\": n}",
                other,
                "ModelSpec",
            )),
        }
    }
}

/// The machine half of a run, in sweep-friendly terms: a device count plus
/// optional GPU/topology overrides on the paper's test-bed presets.
///
/// Whether the devices act as plain RAID0 SSDs or as CSDs is **not** part of
/// the machine spec — it follows from the method's capability axes, exactly
/// as [`crate::Experiment`] flips [`fabric::StorageKind`] per method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Number of storage devices behind the expansion switch.
    pub devices: usize,
    /// GPU preset name: `"A5000"` (default), `"A100"` or `"A4000"`,
    /// case-insensitive.
    pub gpu: Option<String>,
    /// Number of GPUs (default 1).
    pub num_gpus: Option<usize>,
    /// Use the congested topology of paper Fig. 17, where the GPUs share the
    /// expansion switch with the storage devices (default false).
    pub congested: Option<bool>,
    /// Scale out to a data-parallel cluster of identical servers; each host
    /// is one machine as described by the fields above.
    pub cluster: Option<crate::cluster::ClusterSpec>,
}

impl MachineSpec {
    /// The paper's test-bed with `devices` storage devices.
    pub fn devices(devices: usize) -> Self {
        MachineSpec { devices, gpu: None, num_gpus: None, congested: None, cluster: None }
    }

    /// A many-core single-host box in the SG2042/SG2044 class: one dense
    /// node with a deep storage shelf (16 CSDs) behind the expansion switch.
    /// Heterogeneous-machine leg of the roadmap; exercised through the
    /// `lab` runner by `specs/experiments/hetero/`.
    pub fn preset_sg2042() -> Self {
        MachineSpec::devices(16)
    }

    /// A SAKURAONE-like cluster: 4 hosts of 8 CSDs each, data-parallel over
    /// a 400 Gb/s interconnect. The counterpart preset to
    /// [`MachineSpec::preset_sg2042`] for the heterogeneous-machine leg.
    pub fn preset_sakuraone_cluster() -> Self {
        MachineSpec::devices(8)
            .with_cluster(crate::cluster::ClusterSpec::hosts(4).with_interconnect_gbps(400.0))
    }

    /// Scales the machine out to a data-parallel cluster.
    #[must_use]
    pub fn with_cluster(mut self, cluster: crate::cluster::ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Overrides the GPU preset by name.
    pub fn with_gpu(mut self, gpu: impl Into<String>) -> Self {
        self.gpu = Some(gpu.into());
        self
    }

    /// Overrides the GPU count.
    pub fn with_num_gpus(mut self, num_gpus: usize) -> Self {
        self.num_gpus = Some(num_gpus);
        self
    }

    /// Selects the congested multi-GPU topology of paper Fig. 17.
    pub fn congested(mut self) -> Self {
        self.congested = Some(true);
        self
    }

    /// Builds the concrete machine configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for zero devices/GPUs or an unknown
    /// GPU preset.
    pub fn resolve(&self) -> Result<MachineConfig, TrainError> {
        if self.devices == 0 {
            return Err(TrainError::config("machine must have at least one storage device"));
        }
        if self.num_gpus == Some(0) {
            return Err(TrainError::config("machine must have at least one GPU"));
        }
        let mut machine = if self.congested.unwrap_or(false) {
            MachineConfig::congested_multi_gpu(self.devices, self.num_gpus.unwrap_or(1))
        } else {
            let mut machine = MachineConfig::smart_infinity(self.devices);
            if let Some(num_gpus) = self.num_gpus {
                machine.num_gpus = num_gpus;
            }
            machine
        };
        if let Some(name) = &self.gpu {
            let gpu = [llm::GpuSpec::a5000(), llm::GpuSpec::a100(), llm::GpuSpec::a4000()]
                .into_iter()
                .find(|gpu| gpu.name.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    TrainError::config(format!(
                        "unknown GPU preset `{name}` (expected one of: A5000, A100, A4000)"
                    ))
                })?;
            machine = machine.with_gpu(gpu);
        }
        Ok(machine)
    }
}

/// Workload overrides; omitted fields keep the paper's defaults for the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Training batch size.
    pub batch_size: Option<usize>,
    /// Sequence length.
    pub seq_len: Option<usize>,
}

impl WorkloadSpec {
    /// Builds the workload for `model`, applying any overrides.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for a zero batch size or sequence
    /// length.
    pub fn resolve(&self, model: ModelConfig) -> Result<Workload, TrainError> {
        if self.batch_size == Some(0) {
            return Err(TrainError::config("batch size must be positive"));
        }
        if self.seq_len == Some(0) {
            return Err(TrainError::config("sequence length must be positive"));
        }
        let defaults = Workload::paper_default(model.clone());
        Ok(Workload::new(
            model,
            self.batch_size.unwrap_or_else(|| defaults.batch_size()),
            self.seq_len.unwrap_or_else(|| defaults.seq_len()),
        ))
    }
}

// ---------------------------------------------------------------------------
// RunSpec: one complete run as data
// ---------------------------------------------------------------------------

/// One complete training-run configuration as serializable data: what
/// [`Session::builder`] takes as arguments and builder calls, flattened into
/// a JSON-friendly document.
///
/// ```
/// use smart_infinity::RunSpec;
///
/// let spec: RunSpec = RunSpec::from_json(
///     r#"{
///         "model": "GPT2-4.0B",
///         "machine": { "devices": 10 },
///         "method": {
///             "offload": true, "in_storage_update": true,
///             "overlap": true, "pipelined": false,
///             "compression": { "keep_ratio": 0.01 }
///         }
///     }"#,
/// )?;
/// assert_eq!(spec.method.to_string(), "SU+O+C(2%)");
/// let report = spec.session()?.simulate_iteration()?;
/// assert!(report.total_s() > 0.0);
/// # Ok::<(), ztrain::TrainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Optional human-readable label used in campaign reports.
    pub name: Option<String>,
    /// The model to train.
    pub model: ModelSpec,
    /// The machine to train it on.
    pub machine: MachineSpec,
    /// The method's capability axes.
    pub method: MethodSpec,
    /// Optimizer algorithm (default Adam, the paper's default).
    pub optimizer: Option<OptimizerKind>,
    /// Host worker threads of the functional execution backend (default 1).
    pub threads: Option<usize>,
    /// Ablation override of the CSD-internal transfer handler, replacing the
    /// one the method implies (e.g. SmartComp under the naive handler).
    pub handler: Option<HandlerMode>,
    /// Subgroup (tasklet) capacity override, in parameters.
    pub subgroup_elems: Option<usize>,
    /// Workload overrides (batch size, sequence length).
    pub workload: Option<WorkloadSpec>,
    /// Seeded fault-injection plan: transient storage faults, scheduled
    /// wear-out / dropout and timed straggler / uplink degradation. Omitted
    /// (or empty) means the run is byte-identical to a fault-free run.
    pub faults: Option<FaultSpec>,
}

impl RunSpec {
    /// A run spec with every knob at its default.
    pub fn new(model: ModelSpec, machine: MachineSpec, method: MethodSpec) -> Self {
        RunSpec {
            name: None,
            model,
            machine,
            method,
            optimizer: None,
            threads: None,
            handler: None,
            subgroup_elems: None,
            workload: None,
            faults: None,
        }
    }

    /// Sets the report label.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Overrides the optimizer algorithm.
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = Some(optimizer);
        self
    }

    /// Sets the functional backend's worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Forces the CSD-internal transfer handler (ablations).
    pub fn with_handler(mut self, handler: HandlerMode) -> Self {
        self.handler = Some(handler);
        self
    }

    /// Overrides the subgroup (tasklet) capacity.
    pub fn with_subgroup_elems(mut self, elems: usize) -> Self {
        self.subgroup_elems = Some(elems);
        self
    }

    /// Overrides the workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The label campaign reports use: the explicit name, or
    /// `"<model> #SSD=<n> <method>"`.
    pub fn label(&self) -> String {
        match &self.name {
            Some(name) => name.clone(),
            None => format!("{} #SSD={} {}", self.model, self.machine.devices, self.method),
        }
    }

    /// Resolves and validates the spec into a ready [`Session`].
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for any invalid knob — unknown
    /// presets, zero counts, incoherent capability axes, bad compression
    /// settings — from one centralized validation pass.
    pub fn session(&self) -> Result<Session, TrainError> {
        let model = self.model.resolve()?;
        let machine = self.machine.resolve()?;
        let mut builder = Session::builder(model.clone(), machine, self.method);
        if let Some(kind) = self.optimizer {
            builder = builder.with_optimizer(Optimizer::new(kind, HyperParams::default()));
        }
        if let Some(threads) = self.threads {
            builder = builder.with_threads(threads);
        }
        if let Some(handler) = self.handler {
            builder = builder.with_handler(handler);
        }
        if let Some(elems) = self.subgroup_elems {
            builder = builder.with_subgroup_elems(elems);
        }
        if let Some(workload) = &self.workload {
            builder = builder.with_workload(workload.resolve(model)?);
        }
        if let Some(faults) = &self.faults {
            builder = builder.with_faults(faults.clone());
        }
        if let Some(cluster) = self.machine.cluster {
            builder = builder.with_cluster(cluster);
        }
        let session = builder.build();
        session.validate()?;
        Ok(session)
    }

    /// Loads a spec from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] describing the parse or field error
    /// (position, unknown fields, wrong types).
    pub fn from_json(text: &str) -> Result<Self, TrainError> {
        serde_json::from_str(text).map_err(|e| TrainError::config(format!("invalid run spec: {e}")))
    }

    /// The spec's canonical serialization — the content the
    /// [`crate::CampaignService`] result cache is addressed by.
    ///
    /// Canonical form is key-order- and whitespace-insensitive (object keys
    /// sorted, re-rendered with no whitespace), treats omitted optionals and
    /// explicit `null`s identically (null entries are dropped, as are knob
    /// groups whose every knob is unset), normalizes number spellings, and
    /// excludes the presentation-only `name` field — two specs that differ
    /// only in their label run the exact same simulation, so they share a
    /// cache entry. Every *semantic* knob participates.
    pub fn canonical_json(&self) -> String {
        let mut semantic = self.clone();
        semantic.name = None;
        let text = semantic.to_json();
        let value = serde_json::parse(&text).expect("spec serialization is valid JSON");
        crate::canon::canonical_json(&value)
    }

    /// The 64-bit content address of this spec: the FNV-1a hash of
    /// [`RunSpec::canonical_json`]. Stable across processes and platforms;
    /// the service keys its cache on the canonical text and uses this hash
    /// as the compact address it reports, so collisions cannot alias specs.
    pub fn cache_key(&self) -> u64 {
        crate::canon::fnv1a(self.canonical_json().as_bytes())
    }

    /// The spec as compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("spec serialization is infallible")
    }

    /// The spec as pretty-printed JSON (the format of `specs/*.json`).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_compose_from_the_axes() {
        assert_eq!(MethodSpec::baseline().to_string(), "BASE");
        assert_eq!(MethodSpec::smart_update().to_string(), "SU");
        assert_eq!(MethodSpec::smart_update_optimized().to_string(), "SU+O");
        assert_eq!(MethodSpec::smart_comp(0.01).to_string(), "SU+O+C(2%)");
        assert_eq!(MethodSpec::pipelined(None).to_string(), "SU+O+P");
        assert_eq!(MethodSpec::pipelined(Some(0.01)).to_string(), "SU+O+P+C(2%)");
        assert_eq!(MethodSpec::smart_comp(0.05).to_string(), "SU+O+C(10%)");
        // Off-ladder combinations label themselves too.
        let su_c = MethodSpec::smart_update().with_compression(CompressionSpec::top_k(0.01));
        assert_eq!(su_c.to_string(), "SU+C(2%)");
    }

    #[test]
    fn every_method_variant_maps_onto_the_axes() {
        let cases = [
            (Method::Baseline, MethodSpec::baseline()),
            (Method::SmartUpdate, MethodSpec::smart_update()),
            (Method::SmartUpdateOptimized, MethodSpec::smart_update_optimized()),
            (Method::SmartComp { keep_ratio: 0.05 }, MethodSpec::smart_comp(0.05)),
            (Method::SmartInfinityPipelined { keep_ratio: None }, MethodSpec::pipelined(None)),
            (
                Method::SmartInfinityPipelined { keep_ratio: Some(0.01) },
                MethodSpec::pipelined(Some(0.01)),
            ),
        ];
        for (method, expected) in cases {
            let spec = MethodSpec::from(method);
            assert_eq!(spec, expected);
            assert_eq!(spec.to_string(), method.to_string(), "labels must agree");
            spec.validate().expect("ladder methods are valid");
        }
        assert_eq!(MethodSpec::ladder().len(), Method::ladder().len());
    }

    #[test]
    fn incoherent_axes_are_config_errors() {
        let no_offload = MethodSpec { offload: false, ..MethodSpec::baseline() };
        assert!(matches!(no_offload.validate(), Err(TrainError::Config { .. })));
        let overlap_on_host = MethodSpec { overlap: true, ..MethodSpec::baseline() };
        assert!(matches!(overlap_on_host.validate(), Err(TrainError::Config { .. })));
        let compressed_baseline =
            MethodSpec::baseline().with_compression(CompressionSpec::top_k(0.01));
        assert!(matches!(compressed_baseline.validate(), Err(TrainError::Config { .. })));
        let pipeline_without_overlap = MethodSpec { overlap: false, ..MethodSpec::pipelined(None) };
        assert!(matches!(pipeline_without_overlap.validate(), Err(TrainError::Config { .. })));
        for bad_ratio in [0.0, -0.5, 1.5, f64::NAN] {
            let spec = MethodSpec::smart_comp(bad_ratio);
            assert!(
                matches!(spec.validate(), Err(TrainError::Config { .. })),
                "keep ratio {bad_ratio} must be rejected"
            );
        }
        let zero_sample = MethodSpec::smart_update_optimized().with_compression(
            CompressionSpec::top_k(0.01)
                .with_selection(SelectionMethod::ThresholdTopK { sample_size: 0 }),
        );
        assert!(matches!(zero_sample.validate(), Err(TrainError::Config { .. })));
    }

    #[test]
    fn model_presets_resolve_and_unknowns_report_the_choices() {
        for name in ModelSpec::preset_names() {
            let model = ModelSpec::preset(name).resolve().expect(name);
            assert!(model.name().eq_ignore_ascii_case(name));
        }
        // Case-insensitive.
        assert!(ModelSpec::preset("gpt2-4.0b").resolve().is_ok());
        let err = ModelSpec::preset("GPT5-1T").resolve().expect_err("unknown preset");
        assert!(err.to_string().contains("GPT2-4.0B"), "{err}");
        let scaled = ModelSpec::ScaledGpt2 { billions: 2.0 }.resolve().expect("scaled");
        assert!((scaled.num_params() as f64 / 2e9 - 1.0).abs() < 0.2);
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(ModelSpec::ScaledGpt2 { billions: bad }.resolve().is_err());
        }
    }

    #[test]
    fn machine_spec_resolves_presets_and_topologies() {
        let plain = MachineSpec::devices(6).resolve().expect("machine");
        assert_eq!(plain.num_devices, 6);
        assert_eq!(plain.gpu.name, "A5000");
        let a100 = MachineSpec::devices(4).with_gpu("a100").resolve().expect("machine");
        assert_eq!(a100.gpu.name, "A100");
        let congested =
            MachineSpec::devices(10).with_num_gpus(3).congested().resolve().expect("machine");
        assert_eq!(congested.num_gpus, 3);
        assert_eq!(congested.gpu.name, "A4000");
        assert_eq!(congested.topology, fabric::TopologyKind::Congested);
        assert!(MachineSpec::devices(0).resolve().is_err());
        assert!(MachineSpec::devices(2).with_num_gpus(0).resolve().is_err());
        assert!(MachineSpec::devices(2).with_gpu("H100").resolve().is_err());
    }

    #[test]
    fn run_spec_round_trips_through_json() {
        let spec = RunSpec::new(
            ModelSpec::preset("GPT2-4.0B"),
            MachineSpec::devices(10).with_gpu("A100"),
            MethodSpec::pipelined(Some(0.01)),
        )
        .with_name("pipelined sweep point")
        .with_optimizer(OptimizerKind::AdaGrad)
        .with_threads(4)
        .with_handler(HandlerMode::Naive)
        .with_subgroup_elems(1 << 16)
        .with_workload(WorkloadSpec { batch_size: Some(8), seq_len: None });
        let parsed = RunSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(parsed, spec);
        let parsed = RunSpec::from_json(&spec.to_json_pretty()).expect("pretty round trip");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn json_errors_are_config_errors_with_context() {
        let err = RunSpec::from_json("{").expect_err("parse error");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
        assert!(err.to_string().contains("line 1"), "{err}");
        // A typo'd field names itself instead of being silently ignored.
        let err = RunSpec::from_json(
            r#"{"model":"GPT2-4.0B","machine":{"devices":6},
                "method":{"offload":true,"in_storage_update":true,"overlap":true,
                          "pipelined":false,"compresion":{"keep_ratio":0.01}}}"#,
        )
        .expect_err("unknown field");
        assert!(err.to_string().contains("compresion"), "{err}");
    }

    #[test]
    fn spec_sessions_validate_centrally() {
        let good = RunSpec::new(
            ModelSpec::preset("GPT2-0.34B"),
            MachineSpec::devices(3),
            MethodSpec::smart_comp(0.01),
        );
        good.session().expect("valid spec");
        let bad_ratio = RunSpec { method: MethodSpec::smart_comp(0.0), ..good.clone() };
        assert!(matches!(bad_ratio.session(), Err(TrainError::Config { .. })));
        let bad_subgroup = good.clone().with_subgroup_elems(0);
        assert!(matches!(bad_subgroup.session(), Err(TrainError::Config { .. })));
        let bad_batch =
            good.clone().with_workload(WorkloadSpec { batch_size: Some(0), seq_len: None });
        assert!(matches!(bad_batch.session(), Err(TrainError::Config { .. })));
        let bad_model = RunSpec { model: ModelSpec::preset("nope"), ..good };
        assert!(matches!(bad_model.session(), Err(TrainError::Config { .. })));
    }

    #[test]
    fn cache_keys_track_semantics_not_presentation() {
        let spec = RunSpec::new(
            ModelSpec::preset("GPT2-4.0B"),
            MachineSpec::devices(6),
            MethodSpec::smart_comp(0.01),
        );
        // The label is presentation, not content.
        assert_eq!(spec.cache_key(), spec.clone().with_name("renamed").cache_key());
        // An explicit all-null workload group is the same configuration as an
        // omitted one.
        let explicit = spec.clone().with_workload(WorkloadSpec { batch_size: None, seq_len: None });
        assert_eq!(explicit.canonical_json(), spec.canonical_json());
        // Any semantic knob change moves the key.
        let mut devices = spec.clone();
        devices.machine.devices = 7;
        assert_ne!(spec.cache_key(), devices.cache_key());
        let ratio = RunSpec { method: MethodSpec::smart_comp(0.02), ..spec.clone() };
        assert_ne!(spec.cache_key(), ratio.cache_key());
        let threads = spec.clone().with_threads(4);
        assert_ne!(spec.cache_key(), threads.cache_key());
        // Scaling out to a cluster is a semantic change too.
        let mut cluster = spec.clone();
        cluster.machine = cluster.machine.with_cluster(crate::cluster::ClusterSpec::hosts(4));
        assert_ne!(spec.cache_key(), cluster.cache_key());
    }

    #[test]
    fn cluster_specs_parse_run_and_reject_the_host_update_method() {
        let text = r#"{
            "model": "GPT2-4.0B",
            "machine": {"devices": 6, "cluster": {"hosts": 4, "straggler": {"host": 1, "factor": 2.0}}},
            "method": {"offload": true, "in_storage_update": true, "overlap": true, "pipelined": false}
        }"#;
        let spec = RunSpec::from_json(text).expect("cluster spec parses");
        let cluster = spec.machine.cluster.expect("cluster carried");
        assert_eq!(cluster.hosts, 4);
        let clustered = spec.session().expect("session").simulate_iteration().expect("cluster run");
        // The same machine without the cluster layer: one host's iteration.
        let mut single = spec.clone();
        single.machine.cluster = None;
        let alone = single.session().unwrap().simulate_iteration().unwrap();
        assert!(clustered.total_s() > alone.total_s(), "allreduce and straggler add time");
        // JSON round trip keeps the cluster shape.
        assert_eq!(RunSpec::from_json(&spec.to_json()).expect("round trip"), spec);
        // The host-update baseline has no in-storage path to scale out.
        let baseline = RunSpec { method: MethodSpec::baseline(), ..spec };
        let err = baseline.session().expect_err("baseline cluster rejected");
        assert!(err.to_string().contains("in_storage_update"), "{err}");
    }

    #[test]
    fn labels_prefer_the_explicit_name() {
        let spec = RunSpec::new(
            ModelSpec::preset("GPT2-4.0B"),
            MachineSpec::devices(6),
            MethodSpec::baseline(),
        );
        assert_eq!(spec.label(), "GPT2-4.0B #SSD=6 BASE");
        assert_eq!(spec.clone().with_name("custom").label(), "custom");
    }
}
