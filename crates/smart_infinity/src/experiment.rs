//! The experiment front-end: the paper's method ladder and sweep helpers used
//! by the benchmark harness, the examples and the integration tests.
//!
//! The sweep machinery consumes [`MethodSpec`] capability axes
//! ([`Experiment::run_spec`], [`Experiment::compare_specs`]); the closed
//! [`Method`] enum remains as a compatibility alias for the paper's named
//! ablation points, forwarding through `MethodSpec::from(method)`.

use crate::engine_timed::SmartInfinityEngine;
use crate::spec::MethodSpec;
use fabric::StorageKind;
use llm::Workload;
use optim::OptimizerKind;
use serde::{Deserialize, Serialize};
use std::fmt;
use ztrain::{BaselineEngine, IterationReport, MachineConfig, TrainError};

/// The named ablation points of the paper's evaluation.
///
/// This is a compatibility shim over [`MethodSpec`]: every variant maps onto
/// the orthogonal capability axes via `MethodSpec::from(method)`, both types
/// `Display` the same figure labels, and every front door accepts either
/// (they take `impl Into<MethodSpec>`). Combinations outside the paper's
/// ladder — and any future axis — are expressed directly as a `MethodSpec`
/// instead of a new variant here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// `BASE`: ZeRO-Infinity with software RAID0 and CPU updates.
    Baseline,
    /// `SU`: SmartUpdate with the naive per-tasklet buffer handling.
    SmartUpdate,
    /// `SU+O`: SmartUpdate with the optimized internal data transfer handler.
    SmartUpdateOptimized,
    /// `SU+O+C`: optimized SmartUpdate plus SmartComp gradient compression.
    SmartComp {
        /// Fraction of gradient elements kept by the Top-K selection
        /// (the paper's default is 0.01, i.e. a "2%" transfer ratio).
        keep_ratio: f64,
    },
    /// `SU+O+P`: the pipelined execution backend — per-device write →
    /// compress/update → read-back stages overlap across the CSDs, and the
    /// timed view charges the shared uplink per stage instead of per step.
    /// Functionally bit-identical to [`Method::SmartUpdate`] without
    /// compression and to [`Method::SmartComp`] with it.
    SmartInfinityPipelined {
        /// Optional SmartComp Top-K keep ratio; `None` sends dense gradients.
        keep_ratio: Option<f64>,
    },
}

impl Method {
    /// The paper's default ablation ladder: BASE, SU, SU+O, SU+O+C (2%).
    pub fn ladder() -> Vec<Method> {
        vec![
            Method::Baseline,
            Method::SmartUpdate,
            Method::SmartUpdateOptimized,
            Method::SmartComp { keep_ratio: 0.01 },
        ]
    }
}

/// The paper's figure labels, identical to the [`MethodSpec`] the variant
/// maps onto (allocation-free: the formatting composes from the axes).
impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        MethodSpec::from(*self).fmt(f)
    }
}

/// One method's result within an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodReport {
    /// The method's figure label.
    pub label: String,
    /// The per-phase breakdown.
    pub report: IterationReport,
    /// Speedup over the experiment's baseline.
    pub speedup: f64,
}

/// A single experimental setting: one machine and one workload.
///
/// The baseline always runs against the same number of storage devices as
/// Smart-Infinity, using them as plain RAID0 SSDs (the paper uses the NVMe
/// SSD inside each SmartSSD for its baseline, so the device count and media
/// bandwidths are identical by construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// The machine configuration (storage devices are treated as CSDs for
    /// Smart-Infinity methods and as plain SSDs for the baseline).
    pub machine: MachineConfig,
    /// The training workload.
    pub workload: Workload,
    /// The optimizer (Adam unless overridden).
    pub optimizer: OptimizerKind,
    /// Subgroup (tasklet) capacity override for the Smart-Infinity engines.
    pub subgroup_elems: usize,
}

impl Experiment {
    /// Creates an experiment with the Adam optimizer.
    pub fn new(machine: MachineConfig, workload: Workload) -> Self {
        Self {
            machine,
            workload,
            optimizer: OptimizerKind::Adam,
            subgroup_elems: SmartInfinityEngine::DEFAULT_SUBGROUP_ELEMS,
        }
    }

    /// Overrides the optimizer (Section VII-F).
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Overrides the subgroup capacity used by the Smart-Infinity engines.
    ///
    /// # Panics
    ///
    /// Panics if `elems` is zero.
    pub fn with_subgroup_elems(mut self, elems: usize) -> Self {
        assert!(elems > 0, "subgroup capacity must be positive");
        self.subgroup_elems = elems;
        self
    }

    fn baseline_machine(&self) -> MachineConfig {
        MachineConfig { storage: StorageKind::PlainSsd, ..self.machine.clone() }
    }

    fn smart_machine(&self) -> MachineConfig {
        MachineConfig { storage: StorageKind::Csd, ..self.machine.clone() }
    }

    /// Simulates one iteration of the method described by the capability
    /// axes: the baseline engine when `in_storage_update` is off, the
    /// Smart-Infinity engine configured straight from the spec otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for incoherent axes and a wrapped
    /// simulation-kernel failure otherwise.
    pub fn run_spec(&self, spec: &MethodSpec) -> Result<IterationReport, TrainError> {
        spec.validate()?;
        let report = if !spec.uses_csds() {
            BaselineEngine::new(self.baseline_machine(), self.workload.clone(), self.optimizer)
                .simulate_iteration()?
        } else {
            self.smart_engine().with_method_spec(spec).simulate_iteration()?
        };
        Ok(report)
    }

    /// Compatibility wrapper: simulates one iteration with a named method.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping any simulation-kernel failure.
    pub fn run(&self, method: Method) -> Result<IterationReport, TrainError> {
        self.run_spec(&method.into())
    }

    fn smart_engine(&self) -> SmartInfinityEngine {
        SmartInfinityEngine::new(self.smart_machine(), self.workload.clone(), self.optimizer)
            .with_subgroup_elems(self.subgroup_elems)
    }

    /// Runs a list of method specs and reports each with its speedup over
    /// the first (the baseline in the standard ladder).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping any simulation-kernel failure.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty.
    pub fn compare_specs(&self, specs: &[MethodSpec]) -> Result<Vec<MethodReport>, TrainError> {
        assert!(!specs.is_empty(), "at least one method is required");
        let baseline = self.run_spec(&specs[0])?;
        specs
            .iter()
            .map(|spec| {
                let report = self.run_spec(spec)?;
                Ok(MethodReport {
                    label: spec.to_string(),
                    speedup: report.speedup_over(&baseline),
                    report,
                })
            })
            .collect()
    }

    /// Compatibility wrapper over [`Experiment::compare_specs`] for named
    /// methods.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping any simulation-kernel failure.
    ///
    /// # Panics
    ///
    /// Panics if `methods` is empty.
    pub fn compare(&self, methods: &[Method]) -> Result<Vec<MethodReport>, TrainError> {
        let specs: Vec<MethodSpec> = methods.iter().map(MethodSpec::from).collect();
        self.compare_specs(&specs)
    }

    /// Convenience: the full paper ladder (BASE / SU / SU+O / SU+O+C at 2%).
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] wrapping any simulation-kernel failure.
    pub fn ladder(&self) -> Result<Vec<MethodReport>, TrainError> {
        self.compare_specs(&MethodSpec::ladder())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelConfig;

    fn experiment(n: usize) -> Experiment {
        Experiment::new(
            MachineConfig::smart_infinity(n),
            Workload::paper_default(ModelConfig::gpt2_4b()),
        )
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Method::Baseline.to_string(), "BASE");
        assert_eq!(Method::SmartUpdate.to_string(), "SU");
        assert_eq!(Method::SmartUpdateOptimized.to_string(), "SU+O");
        assert_eq!(Method::SmartComp { keep_ratio: 0.01 }.to_string(), "SU+O+C(2%)");
        assert_eq!(Method::SmartInfinityPipelined { keep_ratio: None }.to_string(), "SU+O+P");
        assert_eq!(
            Method::SmartInfinityPipelined { keep_ratio: Some(0.01) }.to_string(),
            "SU+O+P+C(2%)"
        );
        assert_eq!(Method::ladder().len(), 4);
    }

    #[test]
    fn spec_and_enum_front_ends_agree() {
        let exp = experiment(6);
        // The off-ladder combination the enum cannot express: compression
        // under the naive handler (SU+C). It must be slower than SU+O+C and
        // faster than plain SU.
        let su_c =
            crate::MethodSpec::smart_update().with_compression(crate::CompressionSpec::top_k(0.01));
        let su_c_t = exp.run_spec(&su_c).unwrap().total_s();
        let su_t = exp.run(Method::SmartUpdate).unwrap().total_s();
        let su_o_c_t = exp.run(Method::SmartComp { keep_ratio: 0.01 }).unwrap().total_s();
        assert!(su_o_c_t < su_c_t && su_c_t < su_t, "{su_o_c_t} < {su_c_t} < {su_t}");
        // Enum-built and spec-built runs are the same simulation.
        for method in [
            Method::Baseline,
            Method::SmartUpdate,
            Method::SmartUpdateOptimized,
            Method::SmartComp { keep_ratio: 0.01 },
            Method::SmartInfinityPipelined { keep_ratio: Some(0.01) },
        ] {
            assert_eq!(exp.run(method).unwrap(), exp.run_spec(&method.into()).unwrap(), "{method}");
        }
        // An incoherent spec is rejected up front, not deep in the engine.
        let bad = crate::MethodSpec { overlap: false, ..crate::MethodSpec::pipelined(None) };
        assert!(matches!(exp.run_spec(&bad), Err(TrainError::Config { .. })));
    }

    #[test]
    fn pipelined_method_is_at_least_as_fast_as_its_serial_counterpart() {
        let exp = experiment(6);
        let su_o = exp.run(Method::SmartUpdateOptimized).unwrap();
        let pipe = exp.run(Method::SmartInfinityPipelined { keep_ratio: None }).unwrap();
        assert!(
            pipe.total_s() <= su_o.total_s() * 1.001,
            "{} vs {}",
            pipe.total_s(),
            su_o.total_s()
        );
        let comp = exp.run(Method::SmartComp { keep_ratio: 0.01 }).unwrap();
        let pipe_comp = exp.run(Method::SmartInfinityPipelined { keep_ratio: Some(0.01) }).unwrap();
        assert!(pipe_comp.total_s() <= comp.total_s() * 1.001);
        assert!(pipe_comp.total_s() < pipe.total_s(), "compression still helps when pipelined");
    }

    #[test]
    fn ladder_reports_baseline_speedup_of_one() {
        let reports = experiment(6).ladder().unwrap();
        assert_eq!(reports.len(), 4);
        assert!((reports[0].speedup - 1.0).abs() < 1e-9);
        assert!(reports.iter().skip(1).all(|r| r.speedup > 1.0));
    }

    #[test]
    fn optimizer_override_affects_the_baseline_state_volume() {
        let adam = experiment(6).run(Method::Baseline).unwrap();
        let sgd =
            experiment(6).with_optimizer(OptimizerKind::SgdMomentum).run(Method::Baseline).unwrap();
        assert!(sgd.update_s < adam.update_s);
    }

    #[test]
    #[should_panic(expected = "at least one method")]
    fn empty_compare_panics() {
        let _ = experiment(2).compare(&[]);
    }
}
