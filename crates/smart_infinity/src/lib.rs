//! # smart_infinity — near-storage processing for storage-offloaded LLM training
//!
//! A Rust reproduction of **Smart-Infinity** (HPCA 2024): accelerating
//! storage-offloaded LLM training by moving the optimizer update into
//! computational storage devices (CSDs), so that the optimizer states —
//! by far the largest per-iteration traffic — never cross the shared host
//! PCIe interconnect.
//!
//! The crate provides both views of the system:
//!
//! * **Timed** — [`SmartInfinityEngine`] builds a discrete-event model of one
//!   training iteration on a machine with N SmartSSD-class CSDs and reports
//!   the forward / backward+gradient-offload / update phase breakdown; the
//!   companion baseline lives in [`ztrain::BaselineEngine`]. The
//!   [`Experiment`] front-end runs the paper's method ladder (BASE → SU →
//!   SU+O → SU+O+C) and every figure of the evaluation is produced from it
//!   (see the `bench` crate).
//! * **Functional** — [`SmartInfinityTrainer`] really distributes the
//!   flattened parameters across [`csd::CsdDevice`] models, really runs the
//!   FPGA updater/decompressor kernels and really produces updated FP16
//!   parameters, so SmartUpdate's bit-equivalence to the baseline and
//!   SmartComp's accuracy behaviour are testable facts rather than claims.
//!
//! The three ideas of the paper map to:
//!
//! | Paper | Here |
//! |---|---|
//! | SmartUpdate (Section IV-A) | [`Method::SmartUpdate`], [`SmartInfinityEngine`], [`SmartInfinityTrainer`] |
//! | Internal data-transfer handler (Section IV-B) | [`HandlerMode`], the subgroup pipeline in [`SmartInfinityEngine`] |
//! | SmartComp gradient compression (Section IV-C) | [`Method::SmartComp`], `gradcomp` + `csd::Decompressor` |
//! | Multi-CSD distribution (Section IV-D) | [`tensorlib::Partitioner`] inside [`SmartInfinityTrainer`] |
//! | Cross-CSD phase overlap (Sections IV-B/IV-D) | [`Method::SmartInfinityPipelined`], [`ztrain::PipelinedTrainer`], [`PipelineTiming`] |
//!
//! # Quick start
//!
//! A [`Session`] is the front door: one [`MethodSpec`] — five orthogonal
//! capability axes — switches both the timed and the functional view, and
//! both speak [`TrainError`], so `?` works across the whole stack. Every
//! configuration is also plain data: a [`RunSpec`] loads from JSON, and a
//! [`Campaign`] sweeps a list of specs concurrently on `parcore` workers.
//! For service-shaped traffic — many clients, overlapping spec lists —
//! [`CampaignService`] (`campaignd`) adds a bounded work queue with in-flight
//! dedup and a content-addressed result cache keyed on
//! [`RunSpec::canonical_json`].
//!
//! ```
//! use smart_infinity::{Campaign, FlatTensor, RunSpec, TrainError};
//!
//! # fn main() -> Result<(), TrainError> {
//! // One run, declared as data: SmartUpdate + optimized handler + SmartComp.
//! let spec = RunSpec::from_json(
//!     r#"{
//!         "model": "GPT2-0.34B",
//!         "machine": { "devices": 6 },
//!         "method": {
//!             "offload": true, "in_storage_update": true,
//!             "overlap": true, "pipelined": false,
//!             "compression": { "keep_ratio": 0.01 }
//!         }
//!     }"#,
//! )?;
//! assert_eq!(spec.method.to_string(), "SU+O+C(2%)");
//! let session = spec.session()?;
//!
//! // Timed view: how much faster is one iteration than the RAID0 baseline?
//! let mut baseline = spec.clone();
//! baseline.method = smart_infinity::MethodSpec::baseline();
//! let base = baseline.session()?.simulate_iteration()?;
//! let smart = session.simulate_iteration()?;
//! assert!(smart.speedup_over(&base) > 1.0);
//!
//! // Functional view: the same spec selects a real trainer (dyn Trainer).
//! let initial = FlatTensor::randn(4_096, 0.02, 7);
//! let mut trainer = session.trainer(&initial)?;
//! let report = trainer.step(&FlatTensor::randn(4_096, 0.01, 8))?;
//! assert!(report.is_compressed() && report.gradient_bytes < 4 * 4_096);
//!
//! // Sweep view: both specs as one campaign, run concurrently.
//! let report = Campaign::new(vec![baseline, spec]).run()?;
//! assert!(report.runs[1].speedup_over_first > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod canon;
pub mod cluster;
mod engine_functional;
mod engine_timed;
mod experiment;
pub mod sched;
mod service;
mod session;
mod spec;
mod traffic;

pub use campaign::{
    Campaign, CampaignCheckpoint, CampaignProgress, CampaignRef, CampaignReport, RunReport,
};
pub use canon::{canonical_json, fnv1a};
pub use cluster::{ClusterScheduler, ClusterSpec, StragglerSpec};
pub use engine_functional::SmartInfinityTrainer;
pub use engine_timed::{HandlerMode, PipelineTiming, SmartInfinityEngine};
pub use experiment::{Experiment, Method, MethodReport};
pub use sched::{
    compare_schedulers, method_scheduler, PipelinedScheduler, SchedulerRun, SerialNaiveScheduler,
    SerialOverlapScheduler,
};
pub use service::{
    CampaignService, ClientReport, CompletedJob, JobId, JobStatus, JobTelemetry, LatencyStats,
    ServiceConfig, ServiceError, ServiceReport,
};
pub use session::{Session, SessionBuilder};
pub use spec::{CompressionSpec, MachineSpec, MethodSpec, ModelSpec, RunSpec, WorkloadSpec};
pub use traffic::{InterconnectTraffic, TrafficMethod, TrafficModel};

// The spec layer re-exports the selector enum so compression specs can be
// built without importing gradcomp.
pub use gradcomp::SelectionMethod;

// Re-export the pieces users need to drive the library without spelling out
// every substrate crate.
pub use csd::{CsdDevice, FpgaResources, KernelResourceModel};
pub use llm::{CostModel, GpuSpec, ModelConfig, Workload};
pub use optim::{HyperParams, Optimizer, OptimizerKind};
pub use tensorlib::FlatTensor;
pub use ztrain::{
    BaselineEngine, DegradedReport, GradientSource, IterationReport, MachineConfig,
    PipelinedTrainer, StageReport, StepReport, StorageOffloadTrainer, SyntheticGradients,
    TrainError, Trainer, TrainerCheckpoint,
};

// The fault-injection axis: specs carry a [`faultkit::FaultSpec`], sessions
// turn it into per-device injectors and timed effects.
pub use faultkit::{FaultPlan, FaultSpec, TimedFaultEffects};
pub use simkit::FaultAnnotation;

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline claim: with enough CSDs, Smart-Infinity beats the RAID0
    /// baseline by well over 1.5x, and each ingredient of the ablation helps.
    #[test]
    fn method_ladder_is_monotone_at_ten_csds() {
        let workload = Workload::paper_default(ModelConfig::gpt2_4b());
        let exp = Experiment::new(MachineConfig::smart_infinity(10), workload);
        let base = exp.run(Method::Baseline).unwrap();
        let su = exp.run(Method::SmartUpdate).unwrap();
        let suo = exp.run(Method::SmartUpdateOptimized).unwrap();
        let suoc = exp.run(Method::SmartComp { keep_ratio: 0.01 }).unwrap();
        let s_su = su.speedup_over(&base);
        let s_suo = suo.speedup_over(&base);
        let s_suoc = suoc.speedup_over(&base);
        assert!(s_su > 1.2, "SU speedup {s_su:.2}");
        assert!(s_suo >= s_su, "SU+O ({s_suo:.2}) must not be slower than SU ({s_su:.2})");
        assert!(s_suoc > s_suo, "SU+O+C ({s_suoc:.2}) must beat SU+O ({s_suo:.2})");
        assert!(s_suoc > 1.5 && s_suoc < 3.0, "overall speedup {s_suoc:.2}");
    }
}
