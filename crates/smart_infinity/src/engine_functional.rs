//! The functional Smart-Infinity engine: real bytes, real kernels, real
//! updated parameters.

use csd::{CsdDevice, CsdError, CsdTrafficStats, SubgroupUpdate};
use faultkit::FaultPlan;
use gradcomp::{CompressedGradient, Compressor, ErrorFeedback};
use optim::Optimizer;
use parcore::ParExecutor;
use tensorlib::{Chunker, Dtype, FlatTensor, Partitioner};
use ztrain::{
    aggregate_csd_stats, bits_to_tensor, init_csd_shards, reassemble_master_params, recover,
    tensor_to_bits, DegradedReport, StepReport, TrainError, Trainer, TrainerCheckpoint,
};

/// A functional Smart-Infinity trainer.
///
/// The flattened model parameters are distributed contiguously across
/// `num_csds` [`CsdDevice`]s (paper Section IV-D); each training step offloads
/// the gradients to their owner CSDs (optionally Top-K compressed with error
/// feedback — SmartComp), runs the FPGA updater subgroup by subgroup via
/// CSD-internal P2P, and streams the refreshed FP16 working copy back to host
/// memory.
///
/// Without compression the result is bit-identical to the ZeRO-Infinity-style
/// baseline ([`ztrain::StorageOffloadTrainer`]); the integration tests assert
/// exactly that.
#[derive(Debug)]
pub struct SmartInfinityTrainer {
    csds: Vec<CsdDevice>,
    partitioner: Partitioner,
    optimizer: Optimizer,
    params_fp16: FlatTensor,
    compressor: Option<Compressor>,
    feedback: Vec<ErrorFeedback>,
    subgroup_elems: usize,
    pool: ParExecutor,
    shard_scratch: FlatTensor,
    step: u64,
    fault_plan: Option<FaultPlan>,
}

impl SmartInfinityTrainer {
    /// Creates a trainer: partitions the parameters across `num_csds` CSDs and
    /// initialises the FP32 master copy and optimizer states on each device.
    ///
    /// # Errors
    ///
    /// Returns a [`CsdError`] if a device cannot hold its shard.
    ///
    /// # Panics
    ///
    /// Panics if `num_csds` or `subgroup_elems` is zero.
    pub fn new(
        initial_params: &FlatTensor,
        optimizer: Optimizer,
        num_csds: usize,
        subgroup_elems: usize,
    ) -> Result<Self, CsdError> {
        assert!(num_csds > 0, "at least one CSD is required");
        assert!(subgroup_elems > 0, "subgroup capacity must be positive");
        // Shared with the pipelined backend: byte-identical starting state is
        // the first half of the bit-identicality guarantee.
        let (partitioner, csds, feedback) = init_csd_shards(initial_params, &optimizer, num_csds)?;
        let params_fp16 = FlatTensor::from_bytes(&initial_params.to_bytes(Dtype::F16), Dtype::F16);
        Ok(Self {
            csds,
            partitioner,
            optimizer,
            params_fp16,
            compressor: None,
            feedback,
            subgroup_elems,
            pool: ParExecutor::serial(),
            shard_scratch: FlatTensor::default(),
            step: 0,
            fault_plan: None,
        })
    }

    /// Installs a fault plan: deterministic per-device injectors and a
    /// device-internal retry budget on every CSD, plus scheduled wear-out /
    /// dropout. An empty plan is a no-op, so the fault-free path stays
    /// bit-identical.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if !plan.is_empty() {
            for (i, csd) in self.csds.iter_mut().enumerate() {
                csd.set_fault_injector(plan.injector(i as u64));
                csd.set_retry_budget(plan.max_retries());
            }
            self.fault_plan = Some(plan);
        }
        self
    }

    fn max_retries(&self) -> u32 {
        self.fault_plan.as_ref().map_or(0, FaultPlan::max_retries)
    }

    /// Fires scheduled wear-out / dropout at the start of their planned step.
    fn trigger_scheduled_faults(&mut self) {
        if let Some(plan) = &self.fault_plan {
            if plan.wearout_step() == Some(self.step) {
                if let Some(d) = plan.wearout_device(self.csds.len()) {
                    self.csds[d].inject_ssd_wearout();
                }
            }
            if plan.dropout_step() == Some(self.step) {
                if let Some(d) = plan.dropout_device(self.csds.len()) {
                    self.csds[d].inject_dropout();
                }
            }
        }
    }

    /// Enables SmartComp: gradients are Top-K compressed (with error feedback)
    /// on the "GPU" side and decompressed by the CSD decompressor.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is not in `(0, 1]`.
    pub fn with_compression(self, keep_ratio: f64) -> Self {
        self.with_compressor(Compressor::top_k(keep_ratio))
    }

    /// Enables SmartComp with an explicit coordinate selector (exact Top-K,
    /// threshold-accelerated Top-K, Random-K) instead of the default exact
    /// Top-K.
    pub fn with_compressor(mut self, compressor: Compressor) -> Self {
        self.compressor = Some(compressor);
        self
    }

    /// Enables the parallel execution backend: every CSD's updater kernel and
    /// the GPU-side Top-K selection fan out across `num_threads` host worker
    /// threads. The training result is **bit-identical** for every thread
    /// count (the kernels are element-wise and the parallel Top-K reproduces
    /// the serial selection exactly), so this only changes wall-clock time.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.pool = ParExecutor::new(num_threads);
        for csd in &mut self.csds {
            csd.set_threads(num_threads);
        }
        self
    }

    /// The host worker-thread count of the execution backend.
    pub fn num_threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// Number of parameters being trained.
    pub fn num_params(&self) -> usize {
        self.partitioner.total()
    }

    /// Number of CSDs.
    pub fn num_csds(&self) -> usize {
        self.csds.len()
    }

    /// Number of completed steps.
    pub fn steps_completed(&self) -> u64 {
        self.step
    }

    /// The FP16 working copy of the parameters.
    pub fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    /// Whether SmartComp is enabled.
    pub fn is_compressed(&self) -> bool {
        self.compressor.is_some()
    }

    /// Reassembles the FP32 master copy from all CSDs.
    ///
    /// # Errors
    ///
    /// Returns a [`CsdError`] if a shard read fails.
    pub fn master_params(&mut self) -> Result<FlatTensor, CsdError> {
        reassemble_master_params(&mut self.csds, &self.partitioner)
    }

    /// Aggregated CSD-internal P2P traffic statistics across all devices.
    pub fn aggregate_stats(&self) -> CsdTrafficStats {
        aggregate_csd_stats(&self.csds)
    }

    /// Runs one training step with an explicitly provided dense gradient and
    /// reports the step's traffic telemetry ([`StepReport::gradient_bytes`]
    /// is the volume that crossed the host interconnect — dense, or the
    /// index+value stream when SmartComp is enabled; the storage counters are
    /// the CSD-internal P2P traffic).
    ///
    /// # Errors
    ///
    /// Returns a [`CsdError`] if any device operation fails.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the number of parameters.
    pub fn train_step_with_grads(&mut self, grads: &FlatTensor) -> Result<StepReport, CsdError> {
        assert_eq!(grads.len(), self.num_params(), "gradient length mismatch");
        let stats_before = self.aggregate_stats();
        let mut gradient_bytes = 0u64;
        let mut kept = 0u64;
        self.step += 1;
        self.trigger_scheduled_faults();
        let max_retries = self.max_retries();
        let optimizer = self.optimizer;
        let step = self.step;
        let subgroup_elems = self.subgroup_elems;
        let mut deg = DegradedReport::default();
        let shards: Vec<_> = self.partitioner.shards().to_vec();
        for shard in shards {
            if shard.len == 0 {
                continue;
            }
            // The shard's gradient slice lands in a reused scratch buffer.
            grads.slice_into(shard.offset, shard.len, &mut self.shard_scratch);
            // "GPU side": optional error feedback + Top-K compression per
            // shard, corrected in place and selected on the thread pool.
            let compressed: Option<CompressedGradient> = match &self.compressor {
                None => None,
                Some(c) => {
                    let fb = &mut self.feedback[shard.device];
                    fb.apply_in_place(&mut self.shard_scratch);
                    // Fallible: a shard longer than the u32 index space is a
                    // CsdError, not a process abort.
                    let compressed = c.try_compress_par(&self.shard_scratch, &self.pool)?;
                    fb.update(&self.shard_scratch, &compressed);
                    Some(compressed)
                }
            };
            // Interconnect accounting: the shard's gradient crosses the host
            // link downstream exactly once — dense, or as the Top-K stream.
            match &compressed {
                None => gradient_bytes += 4 * shard.len as u64,
                Some(c) => {
                    gradient_bytes += c.compressed_bytes() as u64;
                    kept += c.num_selected() as u64;
                }
            }
            let csd = &mut self.csds[shard.device];
            let scratch = &self.shard_scratch;
            if compressed.is_none() {
                // Dense gradients land on the owner CSD's SSD (backward
                // offload). Whole-region writes are idempotent, so the
                // recovery wrapper may retry (or rebuild-then-retry) freely.
                recover(max_retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                    csd.store_gradients("shard", scratch)
                })?;
            }
            // SmartUpdate: subgroup-by-subgroup near-storage update. Transient
            // faults are cleared *inside* the device (a half-written subgroup
            // must never be recomputed from already-updated state); the
            // wrapper here only handles dead devices, whose first failing
            // operation precedes any write-back.
            for subgroup in Chunker::new(shard.len, subgroup_elems).subgroups() {
                recover(max_retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                    csd.update_subgroup(SubgroupUpdate {
                        shard: "shard",
                        offset: subgroup.offset,
                        len: subgroup.len,
                        optimizer,
                        step,
                        compressed: compressed.as_ref(),
                    })
                })?;
            }
            // Upstream: the refreshed FP16 working copy returns to host
            // memory, rounded directly into the working-copy buffer.
            let updated = recover(max_retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                csd.load_parameters("shard", 0, shard.len)
            })?;
            let dst = &mut self.params_fp16.as_mut_slice()[shard.offset..shard.offset + shard.len];
            updated.roundtrip_f16_into(dst);
            // Fold the device-internal transient retries into the report.
            let (retries, backoff_ms) = csd.take_fault_events();
            deg.transient_faults += retries;
            deg.retries += retries;
            deg.backoff_ms += backoff_ms;
        }
        let stats = self.aggregate_stats();
        Ok(StepReport {
            step: self.step,
            gradient_bytes,
            storage_bytes_read: stats.p2p_read_bytes - stats_before.p2p_read_bytes,
            storage_bytes_written: stats.p2p_write_bytes - stats_before.p2p_write_bytes,
            compression_kept: self.compressor.map(|_| kept),
            threads: self.pool.num_threads(),
            kernel_path: tensorlib::KernelPath::active(),
            stages: None,
            degraded: deg.into_option(),
        })
    }

    /// Runs one training step pulling gradients from a [`ztrain::GradientSource`].
    ///
    /// # Errors
    ///
    /// Returns a [`CsdError`] if any device operation fails.
    pub fn train_step(
        &mut self,
        source: &mut dyn ztrain::GradientSource,
    ) -> Result<StepReport, CsdError> {
        assert_eq!(source.num_params(), self.num_params(), "gradient source size mismatch");
        let grads = source.gradients(self.step + 1, &self.params_fp16);
        self.train_step_with_grads(&grads)
    }
}

impl Trainer for SmartInfinityTrainer {
    fn step(&mut self, grads: &FlatTensor) -> Result<StepReport, TrainError> {
        Ok(self.train_step_with_grads(grads)?)
    }

    fn params_fp16(&self) -> &FlatTensor {
        &self.params_fp16
    }

    fn master_params(&mut self) -> Result<FlatTensor, TrainError> {
        Ok(SmartInfinityTrainer::master_params(self)?)
    }

    fn steps_completed(&self) -> u64 {
        self.step
    }

    fn checkpoint(&mut self) -> Result<TrainerCheckpoint, TrainError> {
        let retries = self.max_retries();
        let num_aux = self.optimizer.kind().num_aux();
        let n = self.num_params();
        let mut master_bits = Vec::with_capacity(n);
        let mut aux_bits = vec![Vec::with_capacity(n); num_aux];
        let mut deg = DegradedReport::default();
        for (csd, shard) in self.csds.iter_mut().zip(self.partitioner.shards()) {
            if shard.len == 0 {
                continue;
            }
            // Checkpoint reads are maintenance traffic: injection is
            // suspended so they cannot perturb the deterministic fault
            // stream of the training ops. Dead devices are still rebuilt.
            csd.suspend_faults(true);
            let result = (|| -> Result<(), TrainError> {
                let t = recover(retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                    csd.load_parameters("shard", 0, shard.len)
                })?;
                master_bits.extend(tensor_to_bits(&t));
                for (a, bits) in aux_bits.iter_mut().enumerate() {
                    let t = recover(retries, &mut deg, csd, CsdDevice::rebuild, |csd| {
                        csd.load_optimizer_state("shard", a, 0, shard.len)
                    })?;
                    bits.extend(tensor_to_bits(&t));
                }
                Ok(())
            })();
            csd.suspend_faults(false);
            result?;
        }
        let residual_bits = if self.compressor.is_some() {
            let mut bits = Vec::with_capacity(n);
            for feedback in &self.feedback {
                bits.extend(tensor_to_bits(feedback.residual()));
            }
            bits
        } else {
            Vec::new()
        };
        Ok(TrainerCheckpoint {
            step: self.step,
            num_params: n as u64,
            master_bits,
            aux_bits,
            residual_bits,
        })
    }

    fn restore(&mut self, checkpoint: &TrainerCheckpoint) -> Result<(), TrainError> {
        checkpoint.check_matches(self.num_params(), self.optimizer.kind().num_aux())?;
        if self.compressor.is_some() == checkpoint.residual_bits.is_empty() {
            return Err(TrainError::config(if self.compressor.is_some() {
                "checkpoint has no error-feedback residuals but compression is enabled"
            } else {
                "checkpoint carries error-feedback residuals but compression is disabled"
            }));
        }
        let master = bits_to_tensor(&checkpoint.master_bits);
        let optimizer = self.optimizer;
        for (csd, shard) in self.csds.iter_mut().zip(self.partitioner.shards()) {
            if shard.len == 0 {
                continue;
            }
            csd.suspend_faults(true);
            let result = (|| -> Result<(), TrainError> {
                let shard_params = master.slice(shard.offset, shard.len);
                csd.store_initial_state("shard", &shard_params, &optimizer)?;
                for (a, bits) in checkpoint.aux_bits.iter().enumerate() {
                    let aux = bits_to_tensor(&bits[shard.offset..shard.offset + shard.len]);
                    csd.store_optimizer_state("shard", a, &aux)?;
                }
                Ok(())
            })();
            csd.suspend_faults(false);
            result?;
            if !checkpoint.residual_bits.is_empty() {
                let residual = bits_to_tensor(
                    &checkpoint.residual_bits[shard.offset..shard.offset + shard.len],
                );
                self.feedback[shard.device].restore_residual(&residual);
            }
        }
        self.params_fp16 = FlatTensor::from_bytes(&master.to_bytes(Dtype::F16), Dtype::F16);
        self.step = checkpoint.step;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optim::OptimizerKind;
    use ztrain::{StorageOffloadTrainer, SyntheticGradients};

    #[test]
    fn smartupdate_is_bit_identical_to_the_baseline_trainer() {
        let n = 5000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 1);

        let mut baseline = StorageOffloadTrainer::new(&initial, optimizer, 2, 1024).unwrap();
        let mut smart = SmartInfinityTrainer::new(&initial, optimizer, 3, 700).unwrap();

        for step in 0..4u64 {
            let grads = FlatTensor::randn(n, 0.01, 100 + step);
            baseline.train_step_with_grads(&grads).unwrap();
            smart.train_step_with_grads(&grads).unwrap();
        }
        assert_eq!(
            smart.master_params().unwrap().as_slice(),
            baseline.master_params().unwrap().as_slice()
        );
        assert_eq!(smart.params_fp16().as_slice(), baseline.params_fp16().as_slice());
        assert_eq!(smart.steps_completed(), 4);
        assert_eq!(smart.num_csds(), 3);
        assert!(!smart.is_compressed());
    }

    #[test]
    fn compression_changes_the_update_but_stays_close() {
        let n = 4000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 2);
        let mut exact = SmartInfinityTrainer::new(&initial, optimizer, 2, 1000).unwrap();
        let mut compressed =
            SmartInfinityTrainer::new(&initial, optimizer, 2, 1000).unwrap().with_compression(0.1);
        assert!(compressed.is_compressed());
        let mut source_a = SyntheticGradients::new(n, 0.01, 7);
        let mut source_b = SyntheticGradients::new(n, 0.01, 7);
        let mut last_exact = StepReport::default();
        let mut last_compressed = StepReport::default();
        for _ in 0..5 {
            last_exact = exact.train_step(&mut source_a).unwrap();
            last_compressed = compressed.train_step(&mut source_b).unwrap();
        }
        let a = exact.master_params().unwrap();
        let b = compressed.master_params().unwrap();
        assert_ne!(a.as_slice(), b.as_slice(), "lossy compression must change something");
        // ... but the parameters stay in the same ballpark (error feedback keeps
        // the sparsified trajectory close to the dense one).
        let rel = (a.mse(&b)).sqrt() / (a.l2_norm() as f64 / (n as f64).sqrt());
        assert!(rel < 0.5, "relative deviation {rel:.3}");
        // And the per-step telemetry reflects the compression: the Top-K
        // stream (8 bytes per kept element) is far smaller than the dense
        // gradient, and only the compressed trainer reports a keep count.
        assert_eq!(last_exact.gradient_bytes, 4 * n as u64);
        assert_eq!(last_exact.compression_kept, None);
        let kept = last_compressed.compression_kept.expect("SmartComp reports its keep count");
        assert_eq!(last_compressed.gradient_bytes, 8 * kept);
        assert!(last_compressed.gradient_bytes < last_exact.gradient_bytes / 4);
    }

    #[test]
    fn p2p_traffic_matches_the_analytic_accounting() {
        let n = 6000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::zeros(n);
        let mut smart = SmartInfinityTrainer::new(&initial, optimizer, 3, 1000).unwrap();
        smart.train_step_with_grads(&FlatTensor::zeros(n)).unwrap();
        let stats = smart.aggregate_stats();
        assert_eq!(stats.elements_updated, n as u64);
        // Adam, dense gradients: 16 B/param read, 12 B/param written, all internal.
        assert_eq!(stats.p2p_read_bytes, 16 * n as u64);
        assert_eq!(stats.p2p_write_bytes, 12 * n as u64);
        assert_eq!(stats.updates_run, 6); // 3 shards x 2 subgroups
    }

    #[test]
    fn different_csd_counts_give_identical_results() {
        let n = 3000;
        let optimizer = Optimizer::new(OptimizerKind::AdaGrad, optim::HyperParams::default());
        let initial = FlatTensor::randn(n, 0.05, 3);
        let grads = FlatTensor::randn(n, 0.01, 4);
        let mut one = SmartInfinityTrainer::new(&initial, optimizer, 1, 512).unwrap();
        let mut many = SmartInfinityTrainer::new(&initial, optimizer, 7, 199).unwrap();
        one.train_step_with_grads(&grads).unwrap();
        many.train_step_with_grads(&grads).unwrap();
        assert_eq!(
            one.master_params().unwrap().as_slice(),
            many.master_params().unwrap().as_slice()
        );
    }

    #[test]
    fn threaded_backend_is_bit_identical_to_serial_with_and_without_compression() {
        let n = 5000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 40);
        let run = |threads: usize, keep: Option<f64>| {
            let mut t = SmartInfinityTrainer::new(&initial, optimizer, 3, 700).unwrap();
            if let Some(k) = keep {
                t = t.with_compression(k);
            }
            if threads > 1 {
                t = t.with_threads(threads);
            }
            assert_eq!(t.num_threads(), threads.max(1));
            let mut source = SyntheticGradients::new(n, 0.01, 55);
            for _ in 0..3 {
                t.train_step(&mut source).unwrap();
            }
            (t.master_params().unwrap(), t.params_fp16().clone())
        };
        for keep in [None, Some(0.05)] {
            let (serial_master, serial_fp16) = run(1, keep);
            for threads in [2usize, 4] {
                let (master, fp16) = run(threads, keep);
                assert_eq!(master.as_slice(), serial_master.as_slice(), "{keep:?} t={threads}");
                assert_eq!(fp16.as_slice(), serial_fp16.as_slice(), "{keep:?} t={threads}");
            }
        }
    }

    #[test]
    fn injected_faults_are_recovered_and_do_not_change_the_numbers() {
        let n = 3000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 31);
        let plan = || {
            let mut spec = faultkit::FaultSpec::empty(17);
            spec.transient_per_mille = Some(250);
            spec.ssd_wearout_step = Some(1);
            spec.csd_dropout_step = Some(2);
            FaultPlan::new(spec)
        };
        let mut clean = SmartInfinityTrainer::new(&initial, optimizer, 3, 500).unwrap();
        let mut faulted =
            SmartInfinityTrainer::new(&initial, optimizer, 3, 500).unwrap().with_fault_plan(plan());
        let mut deg = DegradedReport::default();
        for step in 0..4u64 {
            let grads = FlatTensor::randn(n, 0.01, 200 + step);
            clean.train_step_with_grads(&grads).unwrap();
            let report = faulted.train_step_with_grads(&grads).unwrap();
            if let Some(d) = &report.degraded {
                deg.absorb(d);
            }
        }
        assert!(deg.transient_faults > 0, "250‰ must fire at least once");
        assert_eq!(deg.devices_rebuilt, 2, "one wear-out plus one dropout");
        assert!(deg.rebuild_bytes > 0);
        assert_eq!(
            clean.master_params().unwrap().as_slice(),
            faulted.master_params().unwrap().as_slice(),
            "recovery must be numerically invisible"
        );
        assert_eq!(clean.params_fp16().as_slice(), faulted.params_fp16().as_slice());
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let n = 2000;
        let optimizer = Optimizer::adam_default();
        let initial = FlatTensor::randn(n, 0.05, 61);
        let source = |seed| SyntheticGradients::new(n, 0.01, seed);

        // Straight run: 5 steps.
        let mut straight =
            SmartInfinityTrainer::new(&initial, optimizer, 3, 400).unwrap().with_compression(0.1);
        let mut src = source(71);
        for _ in 0..5 {
            straight.train_step(&mut src).unwrap();
        }

        // Interrupted run: 2 steps, checkpoint (through JSON, the on-disk
        // form), restore into a fresh trainer, 3 more steps.
        let mut first =
            SmartInfinityTrainer::new(&initial, optimizer, 3, 400).unwrap().with_compression(0.1);
        let mut src = source(71);
        for _ in 0..2 {
            first.train_step(&mut src).unwrap();
        }
        let checkpoint = Trainer::checkpoint(&mut first).unwrap();
        assert!(!checkpoint.residual_bits.is_empty(), "compression saves its residuals");
        let json = checkpoint.to_json().unwrap();
        let reloaded = TrainerCheckpoint::from_json(&json).unwrap();
        let mut resumed =
            SmartInfinityTrainer::new(&initial, optimizer, 3, 400).unwrap().with_compression(0.1);
        Trainer::restore(&mut resumed, &reloaded).unwrap();
        assert_eq!(resumed.steps_completed(), 2);
        for _ in 0..3 {
            resumed.train_step(&mut src).unwrap();
        }
        assert_eq!(
            resumed.master_params().unwrap().as_slice(),
            straight.master_params().unwrap().as_slice()
        );
        assert_eq!(resumed.params_fp16().as_slice(), straight.params_fp16().as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one CSD")]
    fn zero_csds_panics() {
        let _ = SmartInfinityTrainer::new(&FlatTensor::zeros(10), Optimizer::adam_default(), 0, 10);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn wrong_gradient_length_panics() {
        let mut t =
            SmartInfinityTrainer::new(&FlatTensor::zeros(10), Optimizer::adam_default(), 1, 10)
                .unwrap();
        let _ = t.train_step_with_grads(&FlatTensor::zeros(5));
    }
}
