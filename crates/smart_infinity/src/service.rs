//! `campaignd` — the asynchronous campaign service: a work queue, in-flight
//! dedup, and a content-addressed result cache over [`RunSpec`] submissions.
//!
//! [`crate::Campaign`] is a single blocking batch call: one caller hands over
//! a spec list and waits. Production traffic looks different — many clients
//! submit *overlapping* spec lists concurrently, and most of the offered load
//! is repeated work. [`CampaignService`] is the service layer for that shape:
//!
//! * **submit → [`JobId`] → poll/await** — clients get a handle immediately
//!   and collect the [`RunReport`] later ([`CampaignService::poll`] never
//!   blocks; [`CampaignService::await_result`] drives the queue until the
//!   job finishes).
//! * **Content-addressed cache** — results are stored under the spec's
//!   canonical serialization ([`RunSpec::canonical_json`]; the FNV-1a
//!   [`RunSpec::cache_key`] is the compact address reported in telemetry).
//!   A resubmitted spec is answered from cache with a bit-identical report,
//!   whatever its JSON spelling or label was. The cache is **bounded**: at
//!   most [`ServiceConfig::cache_capacity`] entries are retained, evicting
//!   the least-recently-used spec (hits refresh recency); evictions are
//!   counted in [`ServiceReport::cache_evictions`] and an evicted spec
//!   simply re-executes on resubmission.
//! * **In-flight dedup** — a spec that is already queued or running is
//!   *coalesced*: the new job attaches to the existing execution instead of
//!   enqueuing a second one. Each unique spec executes at most once, ever
//!   (provable via [`CampaignService::executions`]).
//! * **Admission batching + per-client round-robin fairness** — each
//!   dispatch cycle admits up to [`ServiceConfig::admission_batch`] unique
//!   work items, taking at most one item per client per turn in round-robin
//!   order, so a client with a deep backlog cannot starve the others.
//! * **Bounded queue with explicit rejection** — at most
//!   [`ServiceConfig::queue_depth`] unique work items may wait for
//!   admission; a submission that would enqueue beyond that is rejected with
//!   [`ServiceError::QueueFull`] (coalescing and cache hits are always
//!   admitted — they add no work).
//!
//! Per-job telemetry (queue wait, run time, cache hit, coalesce count, the
//! content address) rides on every [`CompletedJob`], and
//! [`CampaignService::report`] aggregates the service-wide view as a
//! [`ServiceReport`]. Execution itself fans out on [`parcore::ParExecutor`]
//! workers, exactly like [`crate::Campaign`] — the simulations stay
//! deterministic, so cached, coalesced and fresh results are all
//! bit-identical for a given spec.
//!
//! The service is thread-safe behind `&self`: any number of client threads
//! may submit, poll and await concurrently. Dispatch runs on whichever
//! thread holds the dispatcher role (one at a time); waiters park on a
//! condvar until the cycle completes.

use crate::campaign::RunReport;
use crate::spec::RunSpec;
use parcore::ParExecutor;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;
use ztrain::{IterationReport, TrainError};

// ---------------------------------------------------------------------------
// Public surface: config, handles, telemetry, errors
// ---------------------------------------------------------------------------

/// Tuning knobs of a [`CampaignService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ServiceConfig {
    /// Maximum *unique* work items waiting for admission. A submission that
    /// would enqueue a new item beyond this is rejected with
    /// [`ServiceError::QueueFull`]; cache hits and coalesced submissions add
    /// no work and are always accepted.
    pub queue_depth: usize,
    /// Maximum unique work items admitted per dispatch cycle (the batch that
    /// runs concurrently on the executor's workers).
    pub admission_batch: usize,
    /// Maximum entries retained in the content-addressed result cache.
    /// Inserting beyond this evicts the least-recently-used entry (cache
    /// hits refresh recency); evictions are counted in
    /// [`ServiceReport::cache_evictions`].
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    /// 64 queued unique specs, 8-wide admission batches, 256 cached results.
    fn default() -> Self {
        ServiceConfig { queue_depth: 64, admission_batch: 8, cache_capacity: 256 }
    }
}

impl ServiceConfig {
    /// A config with the given queue depth and admission batch (both clamped
    /// to at least 1) and the default cache capacity.
    pub fn new(queue_depth: usize, admission_batch: usize) -> Self {
        ServiceConfig {
            queue_depth: queue_depth.max(1),
            admission_batch: admission_batch.max(1),
            ..ServiceConfig::default()
        }
    }

    /// Replaces the result-cache capacity (clamped to at least 1).
    #[must_use]
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity.max(1);
        self
    }
}

/// Handle for one submitted job, unique within its service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct JobId(u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Per-job telemetry, filled in when the job completes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct JobTelemetry {
    /// Seconds between submission and admission into a dispatch batch
    /// (0 for cache hits, which never queue).
    pub queue_wait_s: f64,
    /// Seconds the simulation ran (0 for cache hits).
    pub run_s: f64,
    /// Whether the result came from the content-addressed cache.
    pub cache_hit: bool,
    /// How many *other* jobs shared this job's execution (in-flight dedup).
    pub coalesced_with: usize,
    /// The spec's 64-bit content address ([`RunSpec::cache_key`]).
    pub spec_key: u64,
}

/// A finished job: the report plus how it was produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CompletedJob {
    /// The job's handle.
    pub id: JobId,
    /// The submitting client.
    pub client: usize,
    /// The per-spec result, labelled with *this* submission's label (the
    /// cached [`IterationReport`] payload is shared between canonically
    /// equal specs; `speedup_over_first` is fixed at 1.0 — a service has no
    /// ladder reference run).
    pub report: RunReport,
    /// How the result was produced.
    pub telemetry: JobTelemetry,
}

/// The observable state of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Waiting for admission into a dispatch batch.
    Queued,
    /// Admitted; its batch is executing now.
    Running,
    /// Finished; the result.
    Done(CompletedJob),
    /// Its execution failed; the error rendered with its source chain.
    Failed(String),
}

/// Errors of the service API.
#[derive(Debug)]
pub enum ServiceError {
    /// The submitted spec failed validation (never enqueued).
    Invalid(TrainError),
    /// The queue is at capacity; resubmit after the backlog drains.
    QueueFull {
        /// Unique work items currently waiting.
        queued: usize,
        /// The configured bound ([`ServiceConfig::queue_depth`]).
        depth: usize,
    },
    /// No such job was ever submitted to this service.
    UnknownJob(JobId),
    /// The awaited job's execution failed.
    JobFailed {
        /// The failed job.
        id: JobId,
        /// The execution error, rendered with its source chain.
        message: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Invalid(e) => write!(f, "invalid submission: {e}"),
            ServiceError::QueueFull { queued, depth } => {
                write!(f, "queue full: {queued} unique spec(s) waiting (depth {depth})")
            }
            ServiceError::UnknownJob(id) => write!(f, "unknown {id}"),
            ServiceError::JobFailed { id, message } => write!(f, "{id} failed: {message}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregated reporting
// ---------------------------------------------------------------------------

/// Order statistics over a latency sample set, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median (nearest-rank).
    pub p50_s: f64,
    /// 95th percentile (nearest-rank).
    pub p95_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes the stats from raw samples (empty input gives all zeros).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |q: f64| {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        LatencyStats {
            count: sorted.len(),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: rank(0.50),
            p95_s: rank(0.95),
            max_s: *sorted.last().expect("non-empty"),
        }
    }
}

/// Per-client aggregates within a [`ServiceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct ClientReport {
    /// Accepted submissions from this client.
    pub submitted: u64,
    /// Jobs that reached [`JobStatus::Done`].
    pub completed: u64,
    /// Of those, answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Submissions rejected with [`ServiceError::QueueFull`].
    pub rejected: u64,
    /// Longest admission wait any of this client's jobs saw, in seconds —
    /// the fairness metric: round-robin admission keeps this bounded for
    /// every client even when one client floods the queue.
    pub max_queue_wait_s: f64,
}

/// The service-wide telemetry snapshot ([`CampaignService::report`]).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceReport {
    /// Accepted submissions (excludes rejections).
    pub submitted: u64,
    /// Unique-spec executions actually run — the dedup proof: with caching
    /// and coalescing, this equals the number of *distinct* canonical specs
    /// ever admitted, no matter how many times each was submitted.
    pub executed: u64,
    /// Submissions answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Submissions coalesced onto an already queued/running execution.
    pub coalesced: u64,
    /// Submissions rejected because the queue was at capacity.
    pub rejected: u64,
    /// Executions that failed (their jobs report [`JobStatus::Failed`]).
    pub failed: u64,
    /// Distinct canonical specs currently held in the result cache (never
    /// exceeds [`ServiceConfig::cache_capacity`]).
    pub cached_specs: usize,
    /// Results evicted from the cache to stay within
    /// [`ServiceConfig::cache_capacity`] (least-recently-used first).
    pub cache_evictions: u64,
    /// Unique work items still waiting or running.
    pub in_flight: usize,
    /// Work items currently sitting in the admission queue (not yet running).
    /// Always ≤ [`ServiceConfig::queue_depth`].
    pub queue_depth: usize,
    /// Per-client aggregates, indexed by client id.
    pub clients: Vec<ClientReport>,
    /// Admission-wait distribution over executed (non-cache-hit) jobs.
    pub queue_wait: LatencyStats,
    /// Run-time distribution over unique-spec executions.
    pub run_time: LatencyStats,
}

impl ServiceReport {
    /// Fraction of accepted submissions answered from the result cache,
    /// in `[0, 1]`; `0.0` before anything has been submitted.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.submitted as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// One coalesced submission: the job handle plus what it needs to be
/// completed under its own label and telemetry.
struct PendingJob {
    id: JobId,
    client: usize,
    label: String,
    submitted: Instant,
}

/// One unique unit of work: a canonical spec with every job attached to it.
struct WorkItem {
    canon: String,
    key: u64,
    spec: RunSpec,
    jobs: Vec<PendingJob>,
    running: bool,
}

/// What a job record points at.
enum JobRecord {
    /// In a work item (queued or running); the index into `State::items`.
    Pending(usize),
    /// Finished.
    Done(CompletedJob),
    /// Execution failed.
    Failed(String),
}

/// A cached result: everything a [`RunReport`] needs except the per-job
/// label (model/method/devices are semantic, so they are identical for every
/// canonically-equal spec).
struct CacheEntry {
    key: u64,
    model: String,
    method: String,
    devices: usize,
    report: IterationReport,
    /// Recency stamp for LRU eviction: the value of `State::cache_tick` at
    /// the last insert or hit.
    last_used: u64,
}

impl CacheEntry {
    /// The cached result as a report labelled for one particular job.
    fn labelled(&self, label: String) -> RunReport {
        RunReport {
            label,
            model: self.model.clone(),
            method: self.method.clone(),
            devices: self.devices,
            report: self.report,
            speedup_over_first: 1.0,
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    executed: u64,
    cache_hits: u64,
    coalesced: u64,
    rejected: u64,
    failed: u64,
    cache_evictions: u64,
}

struct State {
    jobs: Vec<JobRecord>,
    items: Vec<WorkItem>,
    /// Per-client FIFO of item indices awaiting admission (an item sits in
    /// the queue of the client that *originated* it; coalesced jobs from
    /// other clients ride along on the item).
    client_queues: Vec<VecDeque<usize>>,
    /// Round-robin admission cursor over `client_queues`.
    rr_cursor: usize,
    /// Unique items waiting for admission (bounded by `queue_depth`).
    queued_items: usize,
    /// Canonical spec -> in-flight (queued or running) item index.
    in_flight: HashMap<String, usize>,
    /// Canonical spec -> completed result, LRU-bounded by `cache_capacity`.
    cache: HashMap<String, CacheEntry>,
    /// Retention bound on `cache` ([`ServiceConfig::cache_capacity`]).
    cache_capacity: usize,
    /// Monotone recency clock for the cache's LRU order.
    cache_tick: u64,
    /// Whether a dispatch cycle is currently executing outside the lock.
    dispatching: bool,
    counters: Counters,
    clients: Vec<ClientReport>,
    queue_wait_samples: Vec<f64>,
    run_time_samples: Vec<f64>,
}

impl State {
    fn new(cache_capacity: usize) -> Self {
        State {
            jobs: Vec::new(),
            items: Vec::new(),
            client_queues: Vec::new(),
            rr_cursor: 0,
            queued_items: 0,
            in_flight: HashMap::new(),
            cache: HashMap::new(),
            cache_capacity,
            cache_tick: 0,
            dispatching: false,
            counters: Counters::default(),
            clients: Vec::new(),
            queue_wait_samples: Vec::new(),
            run_time_samples: Vec::new(),
        }
    }

    fn ensure_client(&mut self, client: usize) {
        if client >= self.client_queues.len() {
            self.client_queues.resize_with(client + 1, VecDeque::new);
            self.clients.resize_with(client + 1, ClientReport::default);
        }
    }

    /// Admits up to `batch` queued items, visiting clients round-robin (at
    /// most one item per client per turn). Returns the admitted item
    /// indices; the items are marked running.
    fn admit(&mut self, batch: usize) -> Vec<usize> {
        let num_clients = self.client_queues.len();
        let mut admitted = Vec::new();
        if num_clients == 0 {
            return admitted;
        }
        let mut consecutive_empty = 0;
        while admitted.len() < batch && consecutive_empty < num_clients {
            let client = self.rr_cursor;
            self.rr_cursor = (self.rr_cursor + 1) % num_clients;
            match self.client_queues[client].pop_front() {
                Some(item) => {
                    self.items[item].running = true;
                    self.queued_items -= 1;
                    admitted.push(item);
                    consecutive_empty = 0;
                }
                None => consecutive_empty += 1,
            }
        }
        admitted
    }

    /// Completes one executed item: caches the result (or records the
    /// failure) and resolves every coalesced job.
    fn complete(
        &mut self,
        item_idx: usize,
        result: Result<IterationReport, TrainError>,
        run_s: f64,
        admitted_at: Instant,
    ) {
        self.counters.executed += 1;
        self.run_time_samples.push(run_s);
        let item = &mut self.items[item_idx];
        item.running = false;
        self.in_flight.remove(&item.canon);
        let jobs = std::mem::take(&mut item.jobs);
        match result {
            Ok(report) => {
                let entry = CacheEntry {
                    key: item.key,
                    model: item.spec.model.to_string(),
                    method: item.spec.method.to_string(),
                    devices: item.spec.machine.devices,
                    report,
                    last_used: 0, // stamped by `cache_insert`
                };
                let coalesced_with = jobs.len().saturating_sub(1);
                for job in &jobs {
                    let queue_wait_s = admitted_at.saturating_duration_since(job.submitted);
                    let queue_wait_s = queue_wait_s.as_secs_f64();
                    self.queue_wait_samples.push(queue_wait_s);
                    let stats = &mut self.clients[job.client];
                    stats.completed += 1;
                    stats.max_queue_wait_s = stats.max_queue_wait_s.max(queue_wait_s);
                    self.jobs[job.id.0 as usize] = JobRecord::Done(CompletedJob {
                        id: job.id,
                        client: job.client,
                        report: entry.labelled(job.label.clone()),
                        telemetry: JobTelemetry {
                            queue_wait_s,
                            run_s,
                            cache_hit: false,
                            coalesced_with,
                            spec_key: item.key,
                        },
                    });
                }
                let canon = item.canon.clone();
                self.cache_insert(canon, entry);
            }
            Err(error) => {
                // Failures are not cached: the error is recorded on every
                // coalesced job, and a later resubmission gets a fresh try.
                self.counters.failed += 1;
                let message = error.to_string();
                for job in &jobs {
                    self.jobs[job.id.0 as usize] = JobRecord::Failed(message.clone());
                }
            }
        }
    }

    /// Inserts a freshly-computed result, then evicts least-recently-used
    /// entries until the cache is back within its capacity.
    fn cache_insert(&mut self, canon: String, mut entry: CacheEntry) {
        self.cache_tick += 1;
        entry.last_used = self.cache_tick;
        self.cache.insert(canon, entry);
        while self.cache.len() > self.cache_capacity {
            let lru = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("over-capacity cache is non-empty");
            self.cache.remove(&lru);
            self.counters.cache_evictions += 1;
        }
    }

    fn snapshot(&self) -> ServiceReport {
        ServiceReport {
            submitted: self.counters.submitted,
            executed: self.counters.executed,
            cache_hits: self.counters.cache_hits,
            coalesced: self.counters.coalesced,
            rejected: self.counters.rejected,
            failed: self.counters.failed,
            cached_specs: self.cache.len(),
            cache_evictions: self.counters.cache_evictions,
            in_flight: self.in_flight.len(),
            queue_depth: self.queued_items,
            clients: self.clients.clone(),
            queue_wait: LatencyStats::from_samples(&self.queue_wait_samples),
            run_time: LatencyStats::from_samples(&self.run_time_samples),
        }
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// The `campaignd` daemon object: submit [`RunSpec`]s, poll or await
/// [`RunReport`]s. See the module-level docs for the full contract.
pub struct CampaignService {
    config: ServiceConfig,
    state: Mutex<State>,
    /// Signalled whenever a dispatch cycle completes (jobs finished, the
    /// dispatcher role freed) — both waiters in [`CampaignService::poll`]
    /// loops and would-be dispatchers park here.
    cycle_done: Condvar,
}

impl Default for CampaignService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl CampaignService {
    /// An empty service with the given knobs.
    pub fn new(config: ServiceConfig) -> Self {
        let config = ServiceConfig::new(config.queue_depth, config.admission_batch)
            .with_cache_capacity(config.cache_capacity);
        CampaignService {
            config,
            state: Mutex::new(State::new(config.cache_capacity)),
            cycle_done: Condvar::new(),
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Submits a spec on behalf of `client` (client ids are small dense
    /// integers; the service grows its per-client accounting on demand).
    ///
    /// Never blocks on execution: the result is a handle. A spec whose
    /// canonical form is already cached completes immediately (cache hit);
    /// one that is already queued or running coalesces onto the in-flight
    /// execution; otherwise a new work item is enqueued.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Invalid`] for a spec that fails validation, and
    /// [`ServiceError::QueueFull`] when a new work item would exceed
    /// [`ServiceConfig::queue_depth`] — the explicit admission-control
    /// rejection; the client should back off and resubmit.
    pub fn submit(&self, client: usize, spec: &RunSpec) -> Result<JobId, ServiceError> {
        // Validate outside the lock: invalid specs are rejected at the door
        // so the executor can never fail on configuration.
        spec.session().map_err(ServiceError::Invalid)?;
        let canon = spec.canonical_json();
        let key = crate::canon::fnv1a(canon.as_bytes());
        let label = spec.label();
        let mut st = self.lock();
        st.ensure_client(client);
        st.cache_tick += 1;
        let tick = st.cache_tick;
        let id = JobId(st.jobs.len() as u64);
        if let Some(entry) = st.cache.get_mut(&canon) {
            // LRU touch: a hit keeps the entry hot.
            entry.last_used = tick;
            let completed = CompletedJob {
                id,
                client,
                report: entry.labelled(label),
                telemetry: JobTelemetry {
                    queue_wait_s: 0.0,
                    run_s: 0.0,
                    cache_hit: true,
                    coalesced_with: 0,
                    spec_key: entry.key,
                },
            };
            st.jobs.push(JobRecord::Done(completed));
            st.counters.submitted += 1;
            st.counters.cache_hits += 1;
            st.clients[client].submitted += 1;
            st.clients[client].completed += 1;
            st.clients[client].cache_hits += 1;
            return Ok(id);
        }
        let pending = PendingJob { id, client, label, submitted: Instant::now() };
        if let Some(&item_idx) = st.in_flight.get(&canon) {
            st.items[item_idx].jobs.push(pending);
            st.jobs.push(JobRecord::Pending(item_idx));
            st.counters.submitted += 1;
            st.counters.coalesced += 1;
            st.clients[client].submitted += 1;
            return Ok(id);
        }
        if st.queued_items >= self.config.queue_depth {
            st.counters.rejected += 1;
            st.clients[client].rejected += 1;
            return Err(ServiceError::QueueFull {
                queued: st.queued_items,
                depth: self.config.queue_depth,
            });
        }
        let item_idx = st.items.len();
        st.items.push(WorkItem {
            canon: canon.clone(),
            key,
            spec: spec.clone(),
            jobs: vec![pending],
            running: false,
        });
        st.in_flight.insert(canon, item_idx);
        st.client_queues[client].push_back(item_idx);
        st.queued_items += 1;
        st.jobs.push(JobRecord::Pending(item_idx));
        st.counters.submitted += 1;
        st.clients[client].submitted += 1;
        Ok(id)
    }

    /// The job's current status, without blocking.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for a handle this service never issued.
    pub fn poll(&self, id: JobId) -> Result<JobStatus, ServiceError> {
        let st = self.lock();
        match st.jobs.get(id.0 as usize) {
            None => Err(ServiceError::UnknownJob(id)),
            Some(JobRecord::Done(job)) => Ok(JobStatus::Done(job.clone())),
            Some(JobRecord::Failed(message)) => Ok(JobStatus::Failed(message.clone())),
            Some(JobRecord::Pending(item)) => {
                if st.items[*item].running {
                    Ok(JobStatus::Running)
                } else {
                    Ok(JobStatus::Queued)
                }
            }
        }
    }

    /// Runs one dispatch cycle on `pool`: waits for any in-progress cycle,
    /// admits up to [`ServiceConfig::admission_batch`] items round-robin,
    /// executes them concurrently, completes their jobs. Returns the number
    /// of unique items executed (0 when the queue was empty).
    pub fn tick(&self, pool: &ParExecutor) -> usize {
        let mut st = self.lock();
        while st.dispatching {
            st = self.wait(st);
        }
        self.dispatch(st, pool)
    }

    /// Dispatch cycles until the queue is idle (no queued items, no running
    /// cycle). Returns the total number of unique items executed.
    pub fn drain(&self, pool: &ParExecutor) -> usize {
        let mut total = 0;
        loop {
            let executed = self.tick(pool);
            total += executed;
            if executed == 0 {
                let st = self.lock();
                if st.queued_items == 0 && !st.dispatching {
                    return total;
                }
            }
        }
    }

    /// Blocks until `id` finishes, driving the queue from the calling
    /// thread when no other thread is dispatching (so a single-threaded
    /// client can simply submit and await). While another thread holds the
    /// dispatcher role this waits on its cycle instead of spinning.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownJob`] for a foreign handle and
    /// [`ServiceError::JobFailed`] when the job's execution failed.
    pub fn await_result(
        &self,
        id: JobId,
        pool: &ParExecutor,
    ) -> Result<CompletedJob, ServiceError> {
        loop {
            let st = self.lock();
            match st.jobs.get(id.0 as usize) {
                None => return Err(ServiceError::UnknownJob(id)),
                Some(JobRecord::Done(job)) => return Ok(job.clone()),
                Some(JobRecord::Failed(message)) => {
                    return Err(ServiceError::JobFailed { id, message: message.clone() })
                }
                Some(JobRecord::Pending(_)) => {}
            }
            if st.dispatching {
                // Someone else is executing a batch (possibly ours): park
                // until the cycle completes, then re-check.
                drop(self.wait(st));
            } else {
                // Become the dispatcher. Fairness may admit other clients'
                // items first; the loop keeps driving until ours lands.
                self.dispatch(st, pool);
            }
        }
    }

    /// Proof counter for the dedup contract: how many unique-spec executions
    /// have actually run. With coalescing and caching this can never exceed
    /// the number of distinct canonical specs submitted.
    pub fn executions(&self) -> u64 {
        self.lock().counters.executed
    }

    /// A snapshot of the service-wide telemetry.
    pub fn report(&self) -> ServiceReport {
        self.lock().snapshot()
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("campaignd state poisoned")
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        self.cycle_done.wait(guard).expect("campaignd state poisoned")
    }

    /// The dispatch cycle body. Takes the lock with `dispatching == false`,
    /// admits a batch, releases the lock for the (expensive) executions,
    /// re-acquires it to complete the jobs, and wakes every waiter.
    fn dispatch(&self, mut st: MutexGuard<'_, State>, pool: &ParExecutor) -> usize {
        debug_assert!(!st.dispatching);
        let admitted = st.admit(self.config.admission_batch);
        if admitted.is_empty() {
            return 0;
        }
        st.dispatching = true;
        let specs: Vec<RunSpec> = admitted.iter().map(|&i| st.items[i].spec.clone()).collect();
        drop(st);
        let admitted_at = Instant::now();
        // The executor integration: each unique spec's timed simulation runs
        // as one parcore work item, with per-item wall-clock measured by the
        // pool itself.
        let results = pool.map_timed(specs, |_, spec| {
            spec.session().and_then(|session| session.simulate_iteration())
        });
        let mut st = self.lock();
        for (&item_idx, (result, run_s)) in admitted.iter().zip(results) {
            st.complete(item_idx, result, run_s, admitted_at);
        }
        st.dispatching = false;
        drop(st);
        self.cycle_done.notify_all();
        admitted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MachineSpec, MethodSpec, ModelSpec};

    fn spec(devices: usize, method: MethodSpec) -> RunSpec {
        RunSpec::new(ModelSpec::preset("GPT2-0.34B"), MachineSpec::devices(devices), method)
    }

    #[test]
    fn submit_await_and_cache_hit_round_trip() {
        let service = CampaignService::default();
        let pool = ParExecutor::serial();
        let s = spec(2, MethodSpec::smart_update());
        let first = service.submit(0, &s).expect("submit");
        let done = service.await_result(first, &pool).expect("await");
        assert!(!done.telemetry.cache_hit);
        assert_eq!(done.telemetry.spec_key, s.cache_key());
        assert_eq!(service.executions(), 1);
        // Resubmission (different label, same content) is a cache hit with a
        // bit-identical payload.
        let renamed = s.clone().with_name("renamed");
        let second = service.submit(1, &renamed).expect("resubmit");
        let hit = match service.poll(second).expect("poll") {
            JobStatus::Done(job) => job,
            other => panic!("cache hit must complete at submit, got {other:?}"),
        };
        assert!(hit.telemetry.cache_hit);
        assert_eq!(hit.report.label, "renamed");
        assert_eq!(hit.report.report, done.report.report);
        assert_eq!(service.executions(), 1, "cache hits never re-execute");
        let report = service.report();
        assert_eq!(report.submitted, 2);
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cached_specs, 1);
        assert_eq!(report.clients[1].cache_hits, 1);
    }

    #[test]
    fn in_flight_submissions_coalesce_onto_one_execution() {
        let service = CampaignService::default();
        let pool = ParExecutor::serial();
        let s = spec(3, MethodSpec::smart_update_optimized());
        // Four submissions from three clients before any dispatch: one work
        // item, three coalesced riders.
        let ids: Vec<JobId> = (0..4).map(|i| service.submit(i % 3, &s).expect("submit")).collect();
        assert_eq!(service.report().coalesced, 3);
        for &id in &ids {
            assert_eq!(service.poll(id).expect("poll"), JobStatus::Queued);
        }
        let executed = service.drain(&pool);
        assert_eq!(executed, 1);
        assert_eq!(service.executions(), 1, "coalesced submissions share one execution");
        let reports: Vec<CompletedJob> =
            ids.iter().map(|&id| service.await_result(id, &pool).expect("done")).collect();
        for job in &reports {
            assert_eq!(job.telemetry.coalesced_with, 3);
            assert_eq!(job.report.report, reports[0].report.report);
        }
    }

    #[test]
    fn bounded_queue_rejects_explicitly_and_recovers() {
        let service = CampaignService::new(ServiceConfig::new(2, 8));
        let pool = ParExecutor::serial();
        let a = spec(1, MethodSpec::baseline());
        let b = spec(2, MethodSpec::baseline());
        let c = spec(3, MethodSpec::baseline());
        service.submit(0, &a).expect("first fits");
        service.submit(0, &b).expect("second fits");
        let err = service.submit(0, &c).expect_err("third must be rejected");
        assert!(matches!(err, ServiceError::QueueFull { queued: 2, depth: 2 }), "{err}");
        // Coalescing onto queued work is not new work: always accepted.
        service.submit(1, &a).expect("coalesce while full");
        assert_eq!(service.report().rejected, 1);
        // After the backlog drains the same spec is accepted.
        service.drain(&pool);
        service.submit(0, &c).expect("accepted after drain");
        service.drain(&pool);
        assert_eq!(service.executions(), 3);
    }

    #[test]
    fn round_robin_admission_is_fair_across_clients() {
        // Client 0 floods five items; client 1 submits one. With one-item
        // batches, client 1's item must be admitted in the second cycle, not
        // after client 0's whole backlog.
        let service = CampaignService::new(ServiceConfig::new(64, 1));
        let pool = ParExecutor::serial();
        for devices in 1..=5 {
            service.submit(0, &spec(devices, MethodSpec::baseline())).expect("flood");
        }
        let starved = service.submit(1, &spec(6, MethodSpec::smart_update())).expect("submit");
        assert_eq!(service.tick(&pool), 1); // client 0's first item
        assert_eq!(service.tick(&pool), 1); // client 1's only item
        match service.poll(starved).expect("poll") {
            JobStatus::Done(_) => {}
            other => panic!("round-robin must admit client 1 by cycle two, got {other:?}"),
        }
        service.drain(&pool);
        assert_eq!(service.executions(), 6);
    }

    #[test]
    fn invalid_specs_and_foreign_handles_are_errors() {
        let service = CampaignService::default();
        let bad = spec(0, MethodSpec::baseline());
        let err = service.submit(0, &bad).expect_err("zero devices");
        assert!(matches!(err, ServiceError::Invalid(TrainError::Config { .. })), "{err}");
        assert!(err.to_string().contains("invalid submission"), "{err}");
        assert_eq!(service.report().submitted, 0, "invalid specs are never accepted");
        let err = service.poll(JobId(7)).expect_err("unknown job");
        assert!(matches!(err, ServiceError::UnknownJob(JobId(7))), "{err}");
    }

    #[test]
    fn concurrent_clients_share_executions() {
        let service = CampaignService::default();
        let pool = ParExecutor::new(2);
        let specs: Vec<RunSpec> = vec![
            spec(2, MethodSpec::baseline()),
            spec(2, MethodSpec::smart_update()),
            spec(2, MethodSpec::smart_update_optimized()),
        ];
        std::thread::scope(|scope| {
            for client in 0..4 {
                let service = &service;
                let specs = &specs;
                let pool = &pool;
                scope.spawn(move || {
                    let ids: Vec<JobId> = specs
                        .iter()
                        .cycle()
                        .skip(client)
                        .take(specs.len())
                        .map(|s| service.submit(client, s).expect("submit"))
                        .collect();
                    for id in ids {
                        service.await_result(id, pool).expect("await");
                    }
                });
            }
        });
        assert_eq!(
            service.executions(),
            3,
            "4 clients x 3 overlapping specs must run each unique spec exactly once"
        );
        let report = service.report();
        assert_eq!(report.submitted, 12);
        assert_eq!(report.cache_hits + report.coalesced, 9);
        for client in &report.clients {
            assert_eq!(client.completed, 3, "no client may be starved");
        }
    }

    #[test]
    fn result_cache_evicts_least_recently_used_and_re_executes() {
        let service = CampaignService::new(ServiceConfig::default().with_cache_capacity(2));
        let pool = ParExecutor::serial();
        let a = spec(1, MethodSpec::baseline());
        let b = spec(2, MethodSpec::baseline());
        let c = spec(3, MethodSpec::baseline());
        for s in [&a, &b] {
            let id = service.submit(0, s).expect("submit");
            service.await_result(id, &pool).expect("await");
        }
        // Touch `a` (cache hit) so `b` is the least-recently-used entry.
        let hit = service.submit(0, &a).expect("hit");
        assert!(matches!(service.poll(hit).expect("poll"), JobStatus::Done(_)));
        // Inserting `c` overflows capacity 2: `b` must be evicted, not `a`.
        let id = service.submit(0, &c).expect("submit");
        service.await_result(id, &pool).expect("await");
        let report = service.report();
        assert_eq!(report.cached_specs, 2, "cache stays within capacity");
        assert_eq!(report.cache_evictions, 1);
        // `a` survived eviction; `b` re-executes on resubmission.
        let again_a = service.submit(1, &a).expect("resubmit a");
        assert!(matches!(service.poll(again_a).expect("poll"), JobStatus::Done(_)));
        assert_eq!(service.executions(), 3, "a is still cached");
        let again_b = service.submit(1, &b).expect("resubmit b");
        service.await_result(again_b, &pool).expect("await");
        assert_eq!(service.executions(), 4, "evicted b runs again");
        assert_eq!(service.report().cache_evictions, 2, "re-inserting b evicts again");
    }

    #[test]
    fn latency_stats_order_statistics() {
        let stats = LatencyStats::from_samples(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(stats.count, 4);
        assert!((stats.mean_s - 2.5).abs() < 1e-12);
        assert_eq!(stats.p50_s, 2.0);
        assert_eq!(stats.p95_s, 4.0);
        assert_eq!(stats.max_s, 4.0);
        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }
}
