//! Analytic per-iteration system-interconnect traffic accounting (paper Table I).

use crate::spec::MethodSpec;
use llm::Workload;
use optim::OptimizerKind;
use serde::{Deserialize, Serialize};

/// Which update scheme the traffic is accounted for.
///
/// Only three schemes are distinguishable on the interconnect — where the
/// update runs and whether the gradient stream is compressed; the handler
/// and pipelining axes move the *same* bytes at different times. Derive it
/// from a method via `TrafficMethod::from(&spec)` instead of re-mapping
/// methods by hand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficMethod {
    /// ZeRO-Infinity baseline: CPU update, optimizer states round-trip the
    /// shared interconnect every iteration.
    ZeroInfinity,
    /// SmartUpdate: the update runs in the CSDs; only gradients (down) and
    /// updated parameters (up) cross the shared interconnect.
    SmartUpdate,
    /// SmartUpdate + SmartComp with the given keep ratio (fraction of
    /// gradient elements transmitted; the transferred volume is twice that
    /// because every element carries an index and a value).
    SmartComp {
        /// Fraction of gradient elements kept by Top-K.
        keep_ratio: f64,
    },
}

/// The single source of the method → traffic-row mapping (paper Table I):
/// no in-storage update means the full ZeRO-Infinity state round trip,
/// compression scales the gradient stream, everything else is SmartUpdate.
impl From<&MethodSpec> for TrafficMethod {
    fn from(spec: &MethodSpec) -> Self {
        if !spec.uses_csds() {
            TrafficMethod::ZeroInfinity
        } else if let Some(keep_ratio) = spec.keep_ratio() {
            TrafficMethod::SmartComp { keep_ratio }
        } else {
            TrafficMethod::SmartUpdate
        }
    }
}

impl From<crate::Method> for TrafficMethod {
    fn from(method: crate::Method) -> Self {
        TrafficMethod::from(&MethodSpec::from(method))
    }
}

/// Bytes crossing the shared system interconnect in one iteration, split by
/// direction and content (the rows of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InterconnectTraffic {
    /// Optimizer states read from storage into host memory.
    pub optimizer_read: f64,
    /// Optimizer states written from host memory to storage.
    pub optimizer_write: f64,
    /// Gradient bytes read from storage (baseline update) .
    pub gradient_read: f64,
    /// Gradient bytes written to storage (backward-pass offload).
    pub gradient_write: f64,
    /// Updated parameters transferred upstream to host memory (SmartUpdate only).
    pub parameter_upstream: f64,
}

impl InterconnectTraffic {
    /// Total bytes crossing the interconnect.
    pub fn total(&self) -> f64 {
        self.optimizer_read
            + self.optimizer_write
            + self.gradient_read
            + self.gradient_write
            + self.parameter_upstream
    }

    /// Expresses the traffic in the paper's `M` units, where `M` is the FP16
    /// model size in bytes.
    pub fn in_m_units(&self, model_bytes_fp16: f64) -> InterconnectTraffic {
        let scale = 1.0 / model_bytes_fp16;
        InterconnectTraffic {
            optimizer_read: self.optimizer_read * scale,
            optimizer_write: self.optimizer_write * scale,
            gradient_read: self.gradient_read * scale,
            gradient_write: self.gradient_write * scale,
            parameter_upstream: self.parameter_upstream * scale,
        }
    }
}

/// Computes the interconnect traffic of Table I for a workload and optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    workload: Workload,
    optimizer: OptimizerKind,
}

impl TrafficModel {
    /// Creates a traffic model for a workload and optimizer.
    pub fn new(workload: Workload, optimizer: OptimizerKind) -> Self {
        Self { workload, optimizer }
    }

    /// The per-iteration interconnect traffic for one method.
    pub fn per_iteration(&self, method: TrafficMethod) -> InterconnectTraffic {
        let opt = self.workload.optimizer_state_bytes(self.optimizer) as f64;
        let grad = self.workload.gradient_bytes() as f64;
        let params_fp16 = self.workload.model_bytes_fp16() as f64;
        match method {
            TrafficMethod::ZeroInfinity => InterconnectTraffic {
                optimizer_read: opt,
                optimizer_write: opt,
                gradient_read: grad,
                gradient_write: grad,
                parameter_upstream: 0.0,
            },
            TrafficMethod::SmartUpdate => InterconnectTraffic {
                optimizer_read: 0.0,
                optimizer_write: 0.0,
                gradient_read: 0.0,
                gradient_write: grad,
                parameter_upstream: params_fp16,
            },
            TrafficMethod::SmartComp { keep_ratio } => {
                assert!(
                    keep_ratio > 0.0 && keep_ratio <= 1.0,
                    "keep ratio must be in (0, 1], got {keep_ratio}"
                );
                InterconnectTraffic {
                    optimizer_read: 0.0,
                    optimizer_write: 0.0,
                    gradient_read: 0.0,
                    gradient_write: grad * (2.0 * keep_ratio).min(1.0),
                    parameter_upstream: params_fp16,
                }
            }
        }
    }

    /// Reduction factor of total interconnect traffic relative to the baseline.
    pub fn reduction_over_baseline(&self, method: TrafficMethod) -> f64 {
        self.per_iteration(TrafficMethod::ZeroInfinity).total() / self.per_iteration(method).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelConfig;

    fn model() -> TrafficModel {
        TrafficModel::new(Workload::paper_default(ModelConfig::gpt2_4b()), OptimizerKind::Adam)
    }

    #[test]
    fn baseline_row_matches_table_one() {
        let m = model();
        let fp16 = m.workload.model_bytes_fp16() as f64;
        let t = m.per_iteration(TrafficMethod::ZeroInfinity).in_m_units(fp16);
        assert!((t.optimizer_read - 6.0).abs() < 1e-9);
        assert!((t.optimizer_write - 6.0).abs() < 1e-9);
        assert!((t.gradient_read - 2.0).abs() < 1e-9);
        assert!((t.gradient_write - 2.0).abs() < 1e-9);
        assert_eq!(t.parameter_upstream, 0.0);
        assert!((t.total() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn smartupdate_row_matches_table_one() {
        let m = model();
        let fp16 = m.workload.model_bytes_fp16() as f64;
        let t = m.per_iteration(TrafficMethod::SmartUpdate).in_m_units(fp16);
        assert_eq!(t.optimizer_read, 0.0);
        assert_eq!(t.optimizer_write, 0.0);
        assert_eq!(t.gradient_read, 0.0);
        assert!((t.gradient_write - 2.0).abs() < 1e-9);
        assert!((t.parameter_upstream - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smartcomp_scales_the_gradient_write_by_the_transfer_ratio() {
        let m = model();
        let fp16 = m.workload.model_bytes_fp16() as f64;
        let t = m.per_iteration(TrafficMethod::SmartComp { keep_ratio: 0.01 }).in_m_units(fp16);
        assert!((t.gradient_write - 0.02 * 2.0).abs() < 1e-9);
        // keep everything -> identical to SmartUpdate.
        let full = m.per_iteration(TrafficMethod::SmartComp { keep_ratio: 0.5 });
        let su = m.per_iteration(TrafficMethod::SmartUpdate);
        assert!((full.gradient_write - su.gradient_write).abs() < 1e-3);
    }

    #[test]
    fn traffic_reduction_is_large() {
        let m = model();
        // Baseline moves 16M; SmartUpdate moves 3M (2M grads + 1M params up).
        let r = m.reduction_over_baseline(TrafficMethod::SmartUpdate);
        assert!((r - 16.0 / 3.0).abs() < 0.01, "reduction {r:.2}");
        let rc = m.reduction_over_baseline(TrafficMethod::SmartComp { keep_ratio: 0.01 });
        assert!(rc > 10.0, "compressed reduction {rc:.2}");
    }

    #[test]
    fn sgd_has_smaller_state_traffic_than_adam() {
        let w = Workload::paper_default(ModelConfig::gpt2_4b());
        let adam = TrafficModel::new(w.clone(), OptimizerKind::Adam)
            .per_iteration(TrafficMethod::ZeroInfinity)
            .total();
        let sgd = TrafficModel::new(w, OptimizerKind::SgdMomentum)
            .per_iteration(TrafficMethod::ZeroInfinity)
            .total();
        assert!(sgd < adam);
    }

    #[test]
    #[should_panic(expected = "keep ratio")]
    fn invalid_keep_ratio_panics() {
        model().per_iteration(TrafficMethod::SmartComp { keep_ratio: 0.0 });
    }

    #[test]
    fn traffic_rows_derive_from_the_capability_axes() {
        use crate::{Method, MethodSpec};
        assert_eq!(TrafficMethod::from(&MethodSpec::baseline()), TrafficMethod::ZeroInfinity);
        // The handler and pipelining axes do not change what crosses the wire.
        assert_eq!(TrafficMethod::from(&MethodSpec::smart_update()), TrafficMethod::SmartUpdate);
        assert_eq!(
            TrafficMethod::from(&MethodSpec::smart_update_optimized()),
            TrafficMethod::SmartUpdate
        );
        assert_eq!(TrafficMethod::from(&MethodSpec::pipelined(None)), TrafficMethod::SmartUpdate);
        assert_eq!(
            TrafficMethod::from(&MethodSpec::smart_comp(0.01)),
            TrafficMethod::SmartComp { keep_ratio: 0.01 }
        );
        assert_eq!(
            TrafficMethod::from(Method::SmartInfinityPipelined { keep_ratio: Some(0.05) }),
            TrafficMethod::SmartComp { keep_ratio: 0.05 }
        );
    }
}
