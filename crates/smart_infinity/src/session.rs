//! The session front door: declare *what* to train — a model, a machine and
//! a method's capability axes — and the library decides *where* the update
//! runs.
//!
//! Before this module existed the public API forked per substrate:
//! `ztrain::StorageOffloadTrainer::new(...)` for the host baseline,
//! `SmartInfinityTrainer::new(...).with_*()` for the near-storage system, and
//! `Experiment::run(Method)` for the timed view — three dialects for one
//! system. A [`Session`] makes the [`MethodSpec`] the single switch for both
//! views (the compat [`crate::Method`] enum converts implicitly):
//!
//! * [`Session::trainer`] builds the matching *functional* trainer behind a
//!   `Box<dyn Trainer>` — no `in_storage_update` yields the RAID0 baseline,
//!   the in-storage axes yield a [`SmartInfinityTrainer`] or the overlapping
//!   [`ztrain::PipelinedTrainer`], compressed when the spec says so.
//! * [`Session::simulate_iteration`] runs the *timed* model of the same
//!   configuration and returns the per-phase breakdown.
//!
//! Both paths speak [`TrainError`], so a caller can mix them with `?`, and
//! both validate the spec centrally instead of panicking in a substrate.
//! Sessions can also be described entirely as data — see [`crate::RunSpec`]
//! and the JSON-driven [`crate::Campaign`] runner.

use crate::cluster::ClusterSpec;
use crate::engine_timed::{HandlerMode, SmartInfinityEngine};
use crate::experiment::Experiment;
use crate::spec::MethodSpec;
use crate::SmartInfinityTrainer;
use fabric::StorageKind;
use faultkit::{FaultPlan, FaultSpec, TimedFaultEffects};
use llm::{ModelConfig, Workload};
use optim::Optimizer;
use tensorlib::FlatTensor;
use ztrain::{
    BaselineEngine, IterationReport, MachineConfig, PipelinedTrainer, StorageOffloadTrainer,
    TrainError, Trainer,
};

/// Builder for a [`Session`]; see [`Session::builder`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    model: ModelConfig,
    machine: MachineConfig,
    method: MethodSpec,
    optimizer: Optimizer,
    threads: usize,
    handler: Option<HandlerMode>,
    subgroup_elems: Option<usize>,
    workload: Option<Workload>,
    faults: Option<FaultSpec>,
    cluster: Option<ClusterSpec>,
}

impl SessionBuilder {
    /// Overrides the optimizer (default: Adam with the paper's
    /// hyperparameters). The kind drives the timed model's state volume; the
    /// full hyperparameters drive the functional kernels.
    pub fn with_optimizer(mut self, optimizer: Optimizer) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Sets the host worker-thread count of the functional execution backend
    /// (default 1, i.e. serial). Thread count never changes training results
    /// — only wall-clock time. The host baseline is serial by construction
    /// and ignores this knob.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Forces the internal data-transfer handler mode of the timed
    /// Smart-Infinity engine, overriding the one implied by the method
    /// (e.g. to simulate SmartComp with the naive handler as an ablation).
    /// Ignored by baseline (non-CSD) methods and by the functional trainers.
    pub fn with_handler(mut self, handler: HandlerMode) -> Self {
        self.handler = Some(handler);
        self
    }

    /// Overrides the subgroup (tasklet) capacity in parameters, for both the
    /// timed engine and the functional trainers. By default the timed engine
    /// uses [`SmartInfinityEngine::DEFAULT_SUBGROUP_ELEMS`] and the
    /// functional trainers process each device shard as one subgroup.
    ///
    /// A zero capacity is accepted here (builders never fail) and rejected as
    /// [`TrainError::Config`] when the session builds a trainer or simulates
    /// an iteration — it used to panic deep inside the substrate instead.
    pub fn with_subgroup_elems(mut self, elems: usize) -> Self {
        self.subgroup_elems = Some(elems);
        self
    }

    /// Overrides the workload (default: [`Workload::paper_default`] for the
    /// session's model), e.g. for a non-default batch size.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Installs a seeded fault-injection plan: the functional trainers get
    /// per-device injectors with bounded-retry recovery, and the timed view
    /// applies the plan's straggler / uplink degradation. An empty spec is a
    /// no-op — the run stays byte-identical to a fault-free one. The spec is
    /// validated (like every other knob) when the session builds a trainer or
    /// simulates an iteration.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Scales the timed view out to a data-parallel cluster: every host runs
    /// this session's single-server iteration and
    /// [`crate::cluster::simulate_allreduce`] layers the gradient allreduce
    /// on top. Requires an in-storage method (validated on use); ignored by
    /// the functional trainers, which model one server.
    pub fn with_cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Finalises the session.
    pub fn build(self) -> Session {
        let SessionBuilder {
            model,
            machine,
            method,
            optimizer,
            threads,
            handler,
            subgroup_elems,
            workload,
            faults,
            cluster,
        } = self;
        let workload = workload.unwrap_or_else(|| Workload::paper_default(model.clone()));
        Session {
            model,
            machine,
            method,
            optimizer,
            threads,
            handler,
            subgroup_elems,
            workload,
            faults,
            cluster,
        }
    }
}

/// One training configuration — model, machine, [`MethodSpec`] and knobs —
/// from which both the functional and the timed view of the system are built.
#[derive(Debug, Clone)]
pub struct Session {
    model: ModelConfig,
    machine: MachineConfig,
    method: MethodSpec,
    optimizer: Optimizer,
    threads: usize,
    handler: Option<HandlerMode>,
    subgroup_elems: Option<usize>,
    workload: Workload,
    faults: Option<FaultSpec>,
    cluster: Option<ClusterSpec>,
}

impl Session {
    /// Starts building a session for the given model, machine and method —
    /// either a composed [`MethodSpec`] or a named [`crate::Method`] variant.
    pub fn builder(
        model: ModelConfig,
        machine: MachineConfig,
        method: impl Into<MethodSpec>,
    ) -> SessionBuilder {
        SessionBuilder {
            model,
            machine,
            method: method.into(),
            optimizer: Optimizer::adam_default(),
            threads: 1,
            handler: None,
            subgroup_elems: None,
            workload: None,
            faults: None,
            cluster: None,
        }
    }

    /// The capability axes this session trains with.
    pub fn method(&self) -> MethodSpec {
        self.method
    }

    /// The model being trained.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The machine configuration.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The workload of the timed view.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The optimizer in use.
    pub fn optimizer(&self) -> Optimizer {
        self.optimizer
    }

    /// Validates the knobs that would otherwise panic deep inside a
    /// substrate: the machine, the subgroup capacity, and the method's
    /// capability axes (one centralized pass — [`MethodSpec::validate`]).
    pub(crate) fn validate(&self) -> Result<(), TrainError> {
        if self.machine.num_devices == 0 {
            return Err(TrainError::config("machine must have at least one storage device"));
        }
        if self.subgroup_elems == Some(0) {
            return Err(TrainError::config("subgroup capacity must be positive"));
        }
        if let Some(faults) = &self.faults {
            faults.validate().map_err(TrainError::config)?;
        }
        if let Some(cluster) = &self.cluster {
            cluster.validate(&self.method)?;
        }
        self.method.validate()
    }

    /// The fault plan this session injects, if a non-empty spec is installed.
    fn fault_plan(&self) -> Option<FaultPlan> {
        self.faults.as_ref().filter(|spec| !spec.is_empty()).map(|s| FaultPlan::new(s.clone()))
    }

    /// The timed-model side of the fault plan (straggler, uplink derating).
    fn timed_fault_effects(&self) -> Option<TimedFaultEffects> {
        self.fault_plan()
            .map(|plan| plan.timed_effects(self.machine.num_devices))
            .filter(|effects| !effects.is_empty())
    }

    /// Builds the functional trainer this session's capability axes select:
    /// no `in_storage_update` yields the ZeRO-Infinity-style
    /// [`StorageOffloadTrainer`] over `machine.num_devices` RAID0 SSDs; the
    /// in-storage axes yield a [`SmartInfinityTrainer`] over the same number
    /// of CSDs — or the overlapping [`PipelinedTrainer`] when `pipelined` is
    /// set (bit-identical to the serial trainers, with per-stage telemetry in
    /// its step reports) — compressed with the spec's selector when the
    /// compression axis is enabled. (The `overlap` axis is purely a *timing*
    /// feature; it does not change the functional result.)
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for invalid knobs (empty parameters,
    /// fewer parameters than devices, zero subgroup capacity, incoherent
    /// axes, out-of-range keep ratio) and a wrapped substrate error if a
    /// device cannot hold its shard.
    pub fn trainer(&self, initial_params: &FlatTensor) -> Result<Box<dyn Trainer>, TrainError> {
        self.validate()?;
        if initial_params.is_empty() {
            return Err(TrainError::config("cannot train zero parameters"));
        }
        let devices = self.machine.num_devices;
        if initial_params.len() < devices {
            return Err(TrainError::config(format!(
                "cannot split {} parameters across {devices} devices; \
                 every device needs at least one parameter",
                initial_params.len()
            )));
        }
        let subgroup = self.functional_subgroup_elems(initial_params.len());
        let spec = &self.method;
        let plan = self.fault_plan();
        if !spec.uses_csds() {
            let mut trainer =
                StorageOffloadTrainer::new(initial_params, self.optimizer, devices, subgroup)?;
            if let Some(plan) = plan {
                trainer = trainer.with_fault_plan(plan);
            }
            return Ok(Box::new(trainer));
        }
        if spec.pipelined {
            let mut trainer =
                PipelinedTrainer::new(initial_params, self.optimizer, devices, subgroup)?;
            if let Some(compression) = &spec.compression {
                trainer = trainer.with_compressor(compression.compressor());
            }
            if self.threads > 1 {
                trainer = trainer.with_threads(self.threads);
            }
            if let Some(plan) = plan {
                trainer = trainer.with_fault_plan(plan);
            }
            Ok(Box::new(trainer))
        } else {
            let mut trainer = self.smart_trainer(initial_params, devices, subgroup)?;
            if let Some(compression) = &spec.compression {
                trainer = trainer.with_compressor(compression.compressor());
            }
            if let Some(plan) = plan {
                trainer = trainer.with_fault_plan(plan);
            }
            Ok(Box::new(trainer))
        }
    }

    fn smart_trainer(
        &self,
        initial_params: &FlatTensor,
        devices: usize,
        subgroup: usize,
    ) -> Result<SmartInfinityTrainer, TrainError> {
        let mut trainer =
            SmartInfinityTrainer::new(initial_params, self.optimizer, devices, subgroup)?;
        if self.threads > 1 {
            trainer = trainer.with_threads(self.threads);
        }
        Ok(trainer)
    }

    /// The subgroup capacity the functional trainers use: the explicit knob,
    /// or one subgroup per device shard.
    fn functional_subgroup_elems(&self, num_params: usize) -> usize {
        self.subgroup_elems.unwrap_or_else(|| num_params.div_ceil(self.machine.num_devices).max(1))
    }

    /// Simulates one training iteration of this configuration on the timed
    /// stack and returns the per-phase breakdown.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] for invalid knobs or a wrapped
    /// simulation-kernel failure.
    pub fn simulate_iteration(&self) -> Result<IterationReport, TrainError> {
        self.validate()?;
        if let Some(cluster) = self.cluster {
            // Per-host iteration with the cluster layer stripped; the
            // cluster DAG then wraps it in the data-parallel allreduce of
            // one iteration's fp16 gradients.
            let mut single = self.clone();
            single.cluster = None;
            let per_host = single.simulate_iteration()?;
            let grad_bytes = 2.0 * self.model.num_params() as f64;
            return Ok(crate::cluster::simulate_allreduce(&cluster, &per_host, grad_bytes)?);
        }
        let effects = self.timed_fault_effects();
        let handler_override = self.handler.filter(|_| self.method.uses_csds());
        // No fault effects and no handler override: the spec's standard
        // mapping through the experiment front-end.
        if effects.is_none() && handler_override.is_none() {
            return self.experiment()?.run_spec(&self.method);
        }
        if !self.method.uses_csds() {
            // Baseline under a fault plan: no in-storage compute to slow, so
            // only the uplink derating applies.
            let machine = MachineConfig { storage: StorageKind::PlainSsd, ..self.machine.clone() };
            let mut engine =
                BaselineEngine::new(machine, self.workload.clone(), self.optimizer.kind());
            if let Some(effects) = effects {
                engine = engine.with_fault_effects(effects);
            }
            return Ok(engine.simulate_iteration()?);
        }
        // Build the timed engine from the spec, then apply the overrides: the
        // ablation handler (if any) and the fault plan's timed effects.
        let machine = MachineConfig { storage: StorageKind::Csd, ..self.machine.clone() };
        let mut engine =
            SmartInfinityEngine::new(machine, self.workload.clone(), self.optimizer.kind())
                .with_method_spec(&self.method);
        if let Some(handler) = handler_override {
            engine = engine.with_handler(handler);
        }
        if let Some(elems) = self.subgroup_elems {
            engine = engine.with_subgroup_elems(elems);
        }
        if let Some(effects) = effects {
            engine = engine.with_fault_effects(effects);
        }
        Ok(engine.simulate_iteration()?)
    }

    /// The timed sweep view of this configuration: an [`Experiment`] with the
    /// session's machine, workload, optimizer and subgroup capacity, for
    /// multi-method ladders ([`Experiment::compare`], [`Experiment::ladder`]).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for the same invalid knobs
    /// [`Session::simulate_iteration`] rejects (zero devices, zero subgroup
    /// capacity, out-of-range keep ratio) — the lower-level [`Experiment`]
    /// asserts on them instead.
    pub fn experiment(&self) -> Result<Experiment, TrainError> {
        self.validate()?;
        let mut experiment = Experiment::new(self.machine.clone(), self.workload.clone())
            .with_optimizer(self.optimizer.kind());
        if let Some(elems) = self.subgroup_elems {
            experiment = experiment.with_subgroup_elems(elems);
        }
        Ok(experiment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Method;
    use llm::ModelConfig;
    use tensorlib::FlatTensor;
    use ztrain::SyntheticGradients;

    fn session(method: Method) -> Session {
        Session::builder(ModelConfig::gpt2_0_34b(), MachineConfig::smart_infinity(3), method)
            .build()
    }

    #[test]
    fn method_selects_the_functional_substrate() {
        let initial = FlatTensor::randn(600, 0.05, 1);
        let grads = FlatTensor::randn(600, 0.01, 2);
        let mut reports = Vec::new();
        for method in Method::ladder() {
            let mut trainer = session(method).trainer(&initial).expect("trainer");
            let report = trainer.step(&grads).expect("step");
            assert_eq!(trainer.steps_completed(), 1);
            assert_eq!(trainer.num_params(), 600);
            reports.push((method, report));
        }
        // BASE, SU and SU+O move the dense gradient; SmartComp does not.
        assert_eq!(reports[0].1.gradient_bytes, 8 * 600);
        assert_eq!(reports[1].1.gradient_bytes, 4 * 600);
        assert_eq!(reports[2].1.gradient_bytes, 4 * 600);
        assert!(reports[3].1.gradient_bytes < 4 * 600 / 10);
        assert!(reports[3].1.compression_kept.is_some());
    }

    #[test]
    fn baseline_and_smartupdate_sessions_train_identically() {
        let initial = FlatTensor::randn(2_000, 0.05, 9);
        let mut base = session(Method::Baseline).trainer(&initial).expect("trainer");
        let mut smart = session(Method::SmartUpdate).trainer(&initial).expect("trainer");
        let mut src_a = SyntheticGradients::new(2_000, 0.01, 17);
        let mut src_b = SyntheticGradients::new(2_000, 0.01, 17);
        for _ in 0..3 {
            base.step_from(&mut src_a).expect("step");
            smart.step_from(&mut src_b).expect("step");
        }
        assert_eq!(base.params_fp16().as_slice(), smart.params_fp16().as_slice());
        assert_eq!(
            base.master_params().expect("params").as_slice(),
            smart.master_params().expect("params").as_slice()
        );
    }

    #[test]
    fn invalid_keep_ratio_is_a_config_error_not_a_panic() {
        let s = session(Method::SmartComp { keep_ratio: 0.0 });
        let err = s.trainer(&FlatTensor::zeros(10)).expect_err("invalid ratio");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
        let err = s.simulate_iteration().expect_err("invalid ratio");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
    }

    #[test]
    fn empty_parameters_are_rejected() {
        let err = session(Method::Baseline).trainer(&FlatTensor::zeros(0)).expect_err("empty");
        assert!(err.to_string().contains("zero parameters"));
    }

    #[test]
    fn pipelined_sessions_train_bit_identically_to_serial_smart_infinity() {
        let initial = FlatTensor::randn(2_000, 0.05, 9);
        for keep_ratio in [None, Some(0.05)] {
            let serial_method = match keep_ratio {
                None => Method::SmartUpdate,
                Some(keep_ratio) => Method::SmartComp { keep_ratio },
            };
            let mut serial = session(serial_method).trainer(&initial).expect("trainer");
            let mut pipelined = Session::builder(
                ModelConfig::gpt2_0_34b(),
                MachineConfig::smart_infinity(3),
                Method::SmartInfinityPipelined { keep_ratio },
            )
            .with_threads(4)
            .build()
            .trainer(&initial)
            .expect("trainer");
            let mut src_a = SyntheticGradients::new(2_000, 0.01, 17);
            let mut src_b = SyntheticGradients::new(2_000, 0.01, 17);
            let mut report = ztrain::StepReport::default();
            for _ in 0..3 {
                serial.step_from(&mut src_a).expect("step");
                report = pipelined.step_from(&mut src_b).expect("step");
            }
            assert_eq!(serial.params_fp16().as_slice(), pipelined.params_fp16().as_slice());
            assert_eq!(
                serial.master_params().expect("params").as_slice(),
                pipelined.master_params().expect("params").as_slice()
            );
            // Only the pipelined backend reports per-stage overlap telemetry.
            let stages = report.stages.expect("pipelined telemetry");
            assert!(stages.is_overlapped());
            assert_eq!(report.threads, 4);
        }
    }

    #[test]
    fn pipelined_method_drives_the_timed_view() {
        let s = session(Method::SmartInfinityPipelined { keep_ratio: Some(0.01) });
        let pipelined = s.simulate_iteration().expect("simulation");
        let serial = session(Method::SmartComp { keep_ratio: 0.01 }).simulate_iteration().unwrap();
        assert!(pipelined.total_s() <= serial.total_s() * 1.001);
        // The keep-ratio validation covers the pipelined method too.
        let err = session(Method::SmartInfinityPipelined { keep_ratio: Some(0.0) })
            .trainer(&FlatTensor::zeros(10))
            .expect_err("invalid ratio");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
    }

    #[test]
    fn zero_subgroup_capacity_is_a_config_error_not_a_panic() {
        for method in [Method::Baseline, Method::SmartInfinityPipelined { keep_ratio: None }] {
            let s = Session::builder(
                ModelConfig::gpt2_0_34b(),
                MachineConfig::smart_infinity(2),
                method,
            )
            .with_subgroup_elems(0)
            .build();
            let err = s.trainer(&FlatTensor::zeros(16)).expect_err("zero subgroup");
            assert!(matches!(err, TrainError::Config { .. }), "{err}");
            assert!(err.to_string().contains("subgroup"), "{err}");
            let err = s.simulate_iteration().expect_err("zero subgroup");
            assert!(matches!(err, TrainError::Config { .. }), "{err}");
            // The sweep front-end rejects it too instead of asserting later.
            let err = s.experiment().expect_err("zero subgroup");
            assert!(matches!(err, TrainError::Config { .. }), "{err}");
        }
    }

    #[test]
    fn fewer_parameters_than_devices_is_a_config_error() {
        let s = session(Method::SmartUpdate);
        let err = s.trainer(&FlatTensor::zeros(2)).expect_err("2 params on 3 devices");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
        assert!(err.to_string().contains("devices"), "{err}");
        // Exactly one parameter per device is still allowed.
        assert!(s.trainer(&FlatTensor::randn(3, 0.05, 1)).is_ok());
    }

    #[test]
    fn zero_devices_is_a_config_error_not_a_panic() {
        // MachineConfig's fields are public, so a hand-built (or deserialized)
        // config can carry a zero device count; the session must catch it.
        let mut machine = MachineConfig::smart_infinity(2);
        machine.num_devices = 0;
        let s = Session::builder(ModelConfig::gpt2_0_34b(), machine, Method::Baseline).build();
        let err = s.trainer(&FlatTensor::zeros(16)).expect_err("zero devices");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
        assert!(err.to_string().contains("storage device"));
        let err = s.simulate_iteration().expect_err("zero devices");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
    }

    #[test]
    fn handler_override_reproduces_the_method_ladder_neighbours() {
        // SU with the optimized handler == SU+O without an override, and the
        // naive override slows SmartComp down (the ablation the knob exists for).
        let overridden = Session::builder(
            ModelConfig::gpt2_4b(),
            MachineConfig::smart_infinity(6),
            Method::SmartUpdate,
        )
        .with_handler(HandlerMode::Optimized)
        .build()
        .simulate_iteration()
        .expect("simulation");
        let native = Session::builder(
            ModelConfig::gpt2_4b(),
            MachineConfig::smart_infinity(6),
            Method::SmartUpdateOptimized,
        )
        .build()
        .simulate_iteration()
        .expect("simulation");
        assert_eq!(overridden, native);

        let comp = |handler: Option<HandlerMode>| {
            let mut b = Session::builder(
                ModelConfig::gpt2_4b(),
                MachineConfig::smart_infinity(6),
                Method::SmartComp { keep_ratio: 0.01 },
            );
            if let Some(h) = handler {
                b = b.with_handler(h);
            }
            b.build().simulate_iteration().expect("simulation").total_s()
        };
        assert!(comp(Some(HandlerMode::Naive)) > comp(None));
    }

    #[test]
    fn empty_fault_specs_leave_every_view_untouched() {
        let initial = FlatTensor::randn(900, 0.05, 11);
        let grads = FlatTensor::randn(900, 0.01, 12);
        for method in Method::ladder() {
            let clean = session(method);
            let faulted = Session::builder(
                ModelConfig::gpt2_0_34b(),
                MachineConfig::smart_infinity(3),
                method,
            )
            .with_faults(FaultSpec::empty(42))
            .build();
            let mut a = clean.trainer(&initial).expect("trainer");
            let mut b = faulted.trainer(&initial).expect("trainer");
            let ra = a.step(&grads).expect("step");
            let rb = b.step(&grads).expect("step");
            assert_eq!(ra, rb, "an empty plan must not even show up in telemetry");
            assert!(rb.degraded.is_none());
            assert_eq!(a.params_fp16().as_slice(), b.params_fp16().as_slice());
            assert_eq!(
                clean.simulate_iteration().expect("timed"),
                faulted.simulate_iteration().expect("timed"),
            );
        }
    }

    #[test]
    fn fault_specs_are_validated_like_every_other_knob() {
        let mut faults = FaultSpec::empty(1);
        faults.transient_per_mille = Some(2000); // > 1000‰ is nonsense
        let s = Session::builder(
            ModelConfig::gpt2_0_34b(),
            MachineConfig::smart_infinity(3),
            Method::SmartUpdate,
        )
        .with_faults(faults)
        .build();
        let err = s.trainer(&FlatTensor::zeros(30)).expect_err("invalid fault spec");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
        let err = s.simulate_iteration().expect_err("invalid fault spec");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
    }

    #[test]
    fn transient_faults_are_recovered_without_changing_the_numbers() {
        let initial = FlatTensor::randn(1_200, 0.05, 21);
        let mut faults = FaultSpec::empty(7);
        faults.transient_per_mille = Some(300);
        for method in [
            Method::Baseline,
            Method::SmartUpdate,
            Method::SmartInfinityPipelined { keep_ratio: Some(0.05) },
        ] {
            let mut clean = session(method).trainer(&initial).expect("trainer");
            let mut faulted = Session::builder(
                ModelConfig::gpt2_0_34b(),
                MachineConfig::smart_infinity(3),
                method,
            )
            .with_faults(faults.clone())
            .build()
            .trainer(&initial)
            .expect("trainer");
            let mut src_a = SyntheticGradients::new(1_200, 0.01, 23);
            let mut src_b = SyntheticGradients::new(1_200, 0.01, 23);
            let mut degraded_steps = 0;
            for _ in 0..3 {
                clean.step_from(&mut src_a).expect("step");
                let report = faulted.step_from(&mut src_b).expect("faults must be absorbed");
                degraded_steps += usize::from(report.degraded.is_some());
            }
            assert!(degraded_steps > 0, "at 300‰ some step must have seen a fault ({method})");
            assert_eq!(
                clean.master_params().expect("params").as_slice(),
                faulted.master_params().expect("params").as_slice(),
                "recovery must be numerically invisible ({method})"
            );
        }
    }

    #[test]
    fn timed_fault_effects_slow_the_simulated_iteration() {
        let mut faults = FaultSpec::empty(3);
        faults.straggler_factor = Some(4.0);
        faults.link_bandwidth_factor = Some(0.25);
        for method in [Method::Baseline, Method::SmartComp { keep_ratio: 0.01 }] {
            let clean = session(method).simulate_iteration().expect("timed");
            let degraded = Session::builder(
                ModelConfig::gpt2_0_34b(),
                MachineConfig::smart_infinity(3),
                method,
            )
            .with_faults(faults.clone())
            .build()
            .simulate_iteration()
            .expect("timed");
            assert!(
                degraded.total_s() > clean.total_s(),
                "{method}: degraded {} vs clean {}",
                degraded.total_s(),
                clean.total_s()
            );
        }
    }

    #[test]
    fn timed_view_matches_the_experiment_front_end() {
        let s = session(Method::SmartComp { keep_ratio: 0.01 });
        let via_session = s.simulate_iteration().expect("simulation");
        let via_experiment = s
            .experiment()
            .expect("experiment")
            .run(Method::SmartComp { keep_ratio: 0.01 })
            .expect("simulation");
        assert_eq!(via_session, via_experiment);
    }
}
