//! The campaign runner: execute a list of [`RunSpec`]s concurrently on
//! `parcore` workers and collect structured reports.
//!
//! A campaign is the sweep analogue of a [`crate::Session`]: where a session
//! runs *one* configuration, a campaign takes a grid/list of spec documents
//! (usually loaded from a checked-in `specs/*.json` file), validates every
//! spec up front, fans the timed simulations out across host worker threads,
//! and returns a [`CampaignReport`] — per-spec phase breakdowns plus the
//! host CPU count and the `parallel_valid` caveat the tracked perf snapshot
//! uses (on a 1-CPU box the workers time-slice one core, so concurrency
//! cannot show a wall-clock win).
//!
//! Simulations are deterministic, so a campaign's results are identical for
//! every worker count — parallelism only changes wall-clock time, exactly
//! like the functional execution backends.

use crate::spec::RunSpec;
use parcore::ParExecutor;
use serde::{Deserialize, Serialize};
use ztrain::{IterationReport, TrainError};

/// A named list of [`RunSpec`]s to execute; the unit the `specs/*.json`
/// files serialize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// Optional campaign name, echoed into the report.
    pub name: Option<String>,
    /// The runs, in report order (the first is the speedup reference).
    pub specs: Vec<RunSpec>,
}

/// One spec's result within a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The spec's label ([`RunSpec::label`]).
    pub label: String,
    /// The model half of the spec, printed.
    pub model: String,
    /// The method's figure label (`BASE`, `SU+O+C(2%)`, ...).
    pub method: String,
    /// Number of storage devices.
    pub devices: usize,
    /// The per-phase breakdown of one simulated iteration.
    pub report: IterationReport,
    /// Speedup over the campaign's first run (1.0 for the first itself).
    pub speedup_over_first: f64,
}

/// The structured result of a campaign run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CampaignReport {
    /// The campaign's name, if any.
    pub name: Option<String>,
    /// CPUs available to the process when the campaign ran.
    pub num_cpus: usize,
    /// Worker threads the runs were fanned out across.
    pub threads: usize,
    /// Whether concurrent execution could actually help on this host:
    /// `false` when only one CPU was visible or one worker was used — the
    /// results are still correct, but wall-clock comparisons against a
    /// serial run would be misleading (see the BENCH_2.json caveat).
    pub parallel_valid: bool,
    /// Per-spec results, in spec order.
    pub runs: Vec<RunReport>,
}

/// A partially-run campaign: the reports of the specs that finished, in spec
/// order. The `figures -- campaign --checkpoint <path>` runner serializes
/// this after every completed run, so a killed campaign resumes exactly where
/// it stopped — completed reports (including the speedup reference, the
/// first run) are reused verbatim, never recomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// The campaign's name; must match the campaign being resumed.
    pub name: Option<String>,
    /// Reports of the completed leading specs.
    pub completed: Vec<RunReport>,
}

/// The outcome of a resumable campaign step: either every spec has a report,
/// or the run halted early with a checkpoint to resume from.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignProgress {
    /// All specs completed; the full report.
    Complete(CampaignReport),
    /// Halted after the requested number of runs; resume from this.
    Halted(CampaignCheckpoint),
}

/// A reference to one spec inside a campaign document — the second task
/// payload the `lab` harness contract accepts (the first is an inline
/// [`RunSpec`]). Instead of repeating a spec, a task points at a checked-in
/// `specs/*.json` campaign file and selects one of its specs by zero-based
/// index or by label. Loading the referenced file is the caller's job (this
/// crate does no filesystem I/O); [`CampaignRef::select`] then picks the spec
/// out of the parsed [`Campaign`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRef {
    /// Path of the campaign JSON document, resolved by the caller (the `lab`
    /// runner resolves it relative to the task file's directory).
    pub campaign: String,
    /// Zero-based index into the campaign's spec list.
    pub index: Option<usize>,
    /// Label of the referenced spec ([`RunSpec::label`]); must match exactly
    /// one spec. Exactly one of `index` and `label` must be given.
    pub label: Option<String>,
}

impl CampaignRef {
    /// References `campaign` by spec index.
    pub fn by_index(campaign: impl Into<String>, index: usize) -> Self {
        CampaignRef { campaign: campaign.into(), index: Some(index), label: None }
    }

    /// References `campaign` by spec label.
    pub fn by_label(campaign: impl Into<String>, label: impl Into<String>) -> Self {
        CampaignRef { campaign: campaign.into(), index: None, label: Some(label.into()) }
    }

    /// Selects the referenced spec out of the loaded campaign.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] when neither or both selectors are
    /// given, the index is out of range, or the label matches no spec or more
    /// than one.
    pub fn select(&self, campaign: &Campaign) -> Result<RunSpec, TrainError> {
        match (self.index, &self.label) {
            (Some(_), Some(_)) | (None, None) => Err(TrainError::config(format!(
                "campaign ref `{}` must select exactly one of `index` or `label`",
                self.campaign
            ))),
            (Some(index), None) => campaign.specs.get(index).cloned().ok_or_else(|| {
                TrainError::config(format!(
                    "campaign ref `{}`: index {index} out of range ({} specs)",
                    self.campaign,
                    campaign.specs.len()
                ))
            }),
            (None, Some(label)) => {
                let mut matches = campaign.specs.iter().filter(|spec| &spec.label() == label);
                match (matches.next(), matches.next()) {
                    (Some(spec), None) => Ok(spec.clone()),
                    (Some(_), Some(_)) => Err(TrainError::config(format!(
                        "campaign ref `{}`: label `{label}` is ambiguous; select by index",
                        self.campaign
                    ))),
                    _ => Err(TrainError::config(format!(
                        "campaign ref `{}`: no spec labelled `{label}` (labels: {})",
                        self.campaign,
                        campaign
                            .specs
                            .iter()
                            .map(|s| format!("`{}`", s.label()))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))),
                }
            }
        }
    }
}

/// Prefixes a configuration error with the spec it came from — its
/// zero-based position *and* its label, so spec lists with duplicate labels
/// stay debuggable (without stacking "invalid configuration:" prefixes).
/// Substrate errors pass through unchanged so their variant and `source()`
/// chain survive — a caller matching `TrainError::Simulation` must still hit
/// that arm.
fn label_error(index: usize, spec: &RunSpec, error: TrainError) -> TrainError {
    match error {
        TrainError::Config { message } => {
            TrainError::config(format!("run spec [{index}] `{}`: {message}", spec.label()))
        }
        other => other,
    }
}

impl Campaign {
    /// A campaign over the given specs.
    pub fn new(specs: Vec<RunSpec>) -> Self {
        Campaign { name: None, specs }
    }

    /// Names the campaign.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Loads a campaign from its JSON document
    /// (`{"name": ..., "specs": [...]}`, the format of `specs/*.json`).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] describing the parse or field error.
    pub fn from_json(text: &str) -> Result<Self, TrainError> {
        serde_json::from_str(text).map_err(|e| TrainError::config(format!("invalid campaign: {e}")))
    }

    /// The campaign as pretty-printed JSON (the `specs/*.json` format).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign serialization is infallible")
    }

    /// Validates every spec without running anything — the cheap CI check
    /// that a checked-in spec file still resolves.
    ///
    /// # Errors
    ///
    /// Returns the first spec's [`TrainError::Config`], prefixed with its
    /// label.
    pub fn validate(&self) -> Result<(), TrainError> {
        if self.specs.is_empty() {
            return Err(TrainError::config("a campaign needs at least one run spec"));
        }
        for (index, spec) in self.specs.iter().enumerate() {
            spec.session().map_err(|e| label_error(index, spec, e))?;
        }
        Ok(())
    }

    /// Runs the campaign with one worker per available CPU.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for any invalid spec (all specs are
    /// validated before anything runs) and a wrapped simulation error
    /// otherwise.
    pub fn run(&self) -> Result<CampaignReport, TrainError> {
        self.run_on(&ParExecutor::current())
    }

    /// Runs every spec's timed iteration concurrently on `pool` and collects
    /// the per-spec reports, in spec order. Results are deterministic and
    /// identical for every worker count.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for any invalid spec (all specs are
    /// validated before anything runs) and a wrapped simulation error
    /// otherwise.
    pub fn run_on(&self, pool: &ParExecutor) -> Result<CampaignReport, TrainError> {
        match self.run_resumable(pool, None, None)? {
            CampaignProgress::Complete(report) => Ok(report),
            CampaignProgress::Halted(_) => unreachable!("no halt limit was given"),
        }
    }

    /// Runs the campaign resumably: completed reports from `resume_from` are
    /// reused verbatim, at most `halt_after` of the remaining specs run (all
    /// of them when `None`), and the result is either the finished
    /// [`CampaignReport`] or a [`CampaignCheckpoint`] to resume from.
    /// Because the simulations are deterministic, a campaign finished across
    /// any number of halt/resume cycles reports bit-identical results to one
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Config`] for any invalid spec (all specs are
    /// validated before anything runs), for a checkpoint that does not match
    /// this campaign, and a wrapped simulation error otherwise.
    pub fn run_resumable(
        &self,
        pool: &ParExecutor,
        resume_from: Option<CampaignCheckpoint>,
        halt_after: Option<usize>,
    ) -> Result<CampaignProgress, TrainError> {
        if self.specs.is_empty() {
            return Err(TrainError::config("a campaign needs at least one run spec"));
        }
        let mut completed = match resume_from {
            None => Vec::new(),
            Some(checkpoint) => {
                if checkpoint.name != self.name {
                    return Err(TrainError::config(format!(
                        "checkpoint belongs to campaign {:?}, not {:?}",
                        checkpoint.name, self.name
                    )));
                }
                if checkpoint.completed.len() > self.specs.len() {
                    return Err(TrainError::config(format!(
                        "checkpoint has {} completed runs but the campaign only has {} specs",
                        checkpoint.completed.len(),
                        self.specs.len()
                    )));
                }
                for (report, spec) in checkpoint.completed.iter().zip(&self.specs) {
                    if report.label != spec.label() {
                        return Err(TrainError::config(format!(
                            "checkpoint entry `{}` does not match spec `{}`; \
                             the campaign changed since the checkpoint was written",
                            report.label,
                            spec.label()
                        )));
                    }
                }
                checkpoint.completed
            }
        };
        // Resolve and validate everything (including already-completed and
        // not-yet-scheduled specs) up front, so errors carry the spec's label
        // and the parallel phase cannot fail on configuration.
        let sessions = self
            .specs
            .iter()
            .enumerate()
            .map(|(index, spec)| spec.session().map_err(|e| label_error(index, spec, e)))
            .collect::<Result<Vec<_>, TrainError>>()?;
        let done = completed.len();
        let remaining = self.specs.len() - done;
        let batch = halt_after.map_or(remaining, |n| n.min(remaining));
        if batch == 0 && remaining > 0 {
            // Nothing to do this cycle (halt_after == 0): hand back the
            // checkpoint unchanged instead of indexing into empty results.
            return Ok(CampaignProgress::Halted(CampaignCheckpoint {
                name: self.name.clone(),
                completed,
            }));
        }
        let batch_sessions: Vec<_> = sessions.into_iter().skip(done).take(batch).collect();
        let results = pool.map(batch_sessions, |_, session| session.simulate_iteration());
        let reports = results
            .into_iter()
            .zip(self.specs[done..].iter().enumerate())
            .map(|(result, (offset, spec))| result.map_err(|e| label_error(done + offset, spec, e)))
            .collect::<Result<Vec<_>, TrainError>>()?;
        // The speedup reference is the campaign's first report — reused from
        // the checkpoint when resuming (f64s survive the JSON round trip
        // exactly, so resumed speedups are bit-identical too).
        let first = completed.first().map(|r| r.report).unwrap_or_else(|| reports[0]);
        completed.extend(self.specs[done..].iter().zip(reports).map(|(spec, report)| RunReport {
            label: spec.label(),
            model: spec.model.to_string(),
            method: spec.method.to_string(),
            devices: spec.machine.devices,
            speedup_over_first: report.speedup_over(&first),
            report,
        }));
        if completed.len() < self.specs.len() {
            return Ok(CampaignProgress::Halted(CampaignCheckpoint {
                name: self.name.clone(),
                completed,
            }));
        }
        let num_cpus = ParExecutor::current().num_threads();
        Ok(CampaignProgress::Complete(CampaignReport {
            name: self.name.clone(),
            num_cpus,
            threads: pool.num_threads(),
            parallel_valid: num_cpus > 1 && pool.num_threads() > 1,
            runs: completed,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MachineSpec, MethodSpec, ModelSpec};

    fn ladder_campaign() -> Campaign {
        Campaign::new(
            MethodSpec::ladder()
                .into_iter()
                .map(|method| {
                    RunSpec::new(ModelSpec::preset("GPT2-4.0B"), MachineSpec::devices(6), method)
                })
                .collect(),
        )
        .with_name("ladder")
    }

    #[test]
    fn campaign_results_are_identical_for_every_worker_count() {
        let campaign = ladder_campaign();
        let serial = campaign.run_on(&ParExecutor::serial()).expect("serial run");
        let parallel = campaign.run_on(&ParExecutor::new(4)).expect("parallel run");
        assert_eq!(serial.runs, parallel.runs, "parallelism must not change results");
        assert_eq!(serial.threads, 1);
        assert_eq!(parallel.threads, 4);
        assert!(!serial.parallel_valid, "one worker is never parallel");
        assert_eq!(parallel.parallel_valid, parallel.num_cpus > 1);
        assert_eq!(serial.runs.len(), 4);
        assert!((serial.runs[0].speedup_over_first - 1.0).abs() < 1e-12);
        assert!(serial.runs[3].speedup_over_first > 1.0, "SU+O+C beats BASE");
        assert_eq!(serial.runs[3].method, "SU+O+C(2%)");
        assert_eq!(serial.name.as_deref(), Some("ladder"));
    }

    #[test]
    fn halted_and_resumed_campaigns_report_bit_identically() {
        let campaign = ladder_campaign();
        let pool = ParExecutor::serial();
        let straight = campaign.run_on(&pool).expect("straight run");

        // Run two specs, "kill", round-trip the checkpoint through JSON (the
        // on-disk form), then resume the remaining two.
        let halted = match campaign.run_resumable(&pool, None, Some(2)).expect("first cycle") {
            CampaignProgress::Halted(checkpoint) => checkpoint,
            CampaignProgress::Complete(_) => panic!("must halt after 2 of 4"),
        };
        assert_eq!(halted.completed.len(), 2);
        let json = serde_json::to_string(&halted).expect("checkpoint serializes");
        let reloaded: CampaignCheckpoint = serde_json::from_str(&json).expect("parses back");
        assert_eq!(reloaded, halted);
        let resumed = match campaign.run_resumable(&pool, Some(reloaded), None).expect("resume") {
            CampaignProgress::Complete(report) => report,
            CampaignProgress::Halted(_) => panic!("no halt limit on the resume"),
        };
        assert_eq!(resumed.runs, straight.runs, "resume must not change any number");
    }

    #[test]
    fn mismatched_checkpoints_are_rejected() {
        let campaign = ladder_campaign();
        let pool = ParExecutor::serial();
        let halted = match campaign.run_resumable(&pool, None, Some(1)).expect("one run") {
            CampaignProgress::Halted(checkpoint) => checkpoint,
            CampaignProgress::Complete(_) => panic!("must halt"),
        };
        // Wrong campaign name.
        let renamed = CampaignCheckpoint { name: Some("other".into()), ..halted.clone() };
        let err = campaign.run_resumable(&pool, Some(renamed), None).expect_err("name mismatch");
        assert!(err.to_string().contains("belongs to campaign"), "{err}");
        // The campaign changed under the checkpoint.
        let mut reordered = campaign.clone();
        reordered.specs.swap(0, 1);
        let err =
            reordered.run_resumable(&pool, Some(halted.clone()), None).expect_err("label mismatch");
        assert!(err.to_string().contains("does not match spec"), "{err}");
        // More completed runs than specs.
        let mut short = campaign.clone();
        short.specs.truncate(1);
        let mut fat = halted;
        fat.completed.extend(fat.completed.clone());
        let err = short.run_resumable(&pool, Some(fat), None).expect_err("too many runs");
        assert!(err.to_string().contains("completed runs"), "{err}");
    }

    #[test]
    fn campaigns_roundtrip_through_json() {
        let campaign = ladder_campaign();
        let parsed = Campaign::from_json(&campaign.to_json_pretty()).expect("round trip");
        assert_eq!(parsed, campaign);
    }

    #[test]
    fn substrate_errors_keep_their_variant_through_labeling() {
        // Only Config errors gain the spec-label prefix; a simulation error
        // must come back as TrainError::Simulation so callers can match on
        // it and walk its source() chain.
        let spec = ladder_campaign().specs[0].clone();
        let sim = TrainError::from(simkit::SimError::UnknownId { kind: "task", index: 7 });
        assert!(matches!(label_error(0, &spec, sim), TrainError::Simulation(_)));
        let config = TrainError::config("keep ratio out of range");
        let labelled = label_error(2, &spec, config);
        let message = labelled.to_string();
        assert!(matches!(labelled, TrainError::Config { .. }));
        assert!(message.contains("[2]"), "{message}");
        assert!(message.contains("GPT2-4.0B #SSD=6"), "{message}");
        assert_eq!(message.matches("invalid configuration").count(), 1, "{message}");
    }

    #[test]
    fn validation_errors_carry_the_spec_index_for_duplicate_labels() {
        // Two specs share a label; only the second is invalid. The index in
        // the error is the only way to tell them apart.
        let mut campaign = ladder_campaign();
        campaign.specs[1] = campaign.specs[1].clone().with_name("twin");
        campaign.specs[2] = campaign.specs[2].clone().with_name("twin");
        campaign.specs[2].method = MethodSpec::smart_comp(7.0);
        let err = campaign.validate().expect_err("second twin is invalid");
        assert!(err.to_string().contains("[2] `twin`"), "{err}");
        let err = campaign.run().expect_err("run validates too");
        assert!(err.to_string().contains("[2] `twin`"), "{err}");
    }

    #[test]
    fn invalid_specs_fail_before_anything_runs_with_the_label() {
        let mut campaign = ladder_campaign();
        campaign.specs[2].method = MethodSpec::smart_comp(7.0);
        let err = campaign.run().expect_err("invalid keep ratio");
        assert!(matches!(err, TrainError::Config { .. }), "{err}");
        assert!(err.to_string().contains("GPT2-4.0B #SSD=6"), "{err}");
        let err = campaign.validate().expect_err("validate finds it too");
        assert!(err.to_string().contains("keep ratio"), "{err}");
        assert!(Campaign::new(Vec::new()).run().is_err(), "empty campaigns are rejected");
        assert!(Campaign::new(Vec::new()).validate().is_err());
    }
}
