//! The experiment harness: one function per table/figure of the paper's
//! evaluation section. Each function runs the corresponding experiment on the
//! simulated platform and returns a serialisable result that the `figures`
//! binary renders as text (and JSON).

use llm::{CostModel, GpuSpec, ModelConfig, Workload};
use optim::OptimizerKind;
use parcore::ParExecutor;
use serde::{Deserialize, Serialize};
use smart_infinity::{
    Campaign, CampaignReport, CampaignService, Experiment, MachineSpec, Method, MethodSpec,
    ModelSpec, RunSpec, ServiceConfig, ServiceError, ServiceReport, Session, SmartInfinityEngine,
    TrafficMethod, TrafficModel,
};
use tensorlib::KernelPath;
use ztrain::realtrain::{train_classifier, Dataset, MlpModel, TrainConfig};
use ztrain::{BaselineEngine, IterationReport, MachineConfig, PipelinedTrainer};

/// A labelled per-phase breakdown row.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// Row label (model / method / configuration).
    pub label: String,
    /// Phase breakdown of one iteration.
    pub report: IterationReport,
    /// Speedup over the row's reference baseline (1.0 for the baseline itself).
    pub speedup: f64,
}

/// Renders breakdown rows as a fixed-width text table.
pub fn render_breakdown(title: &str, rows: &[BreakdownRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<34} {:>8} {:>10} {:>10} {:>10} {:>9}\n",
        "config", "FW (s)", "BW+Grad(s)", "Update(s)", "Total (s)", "Speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<34} {:>8.2} {:>10.2} {:>10.2} {:>10.2} {:>8.2}x\n",
            r.label,
            r.report.forward_s,
            r.report.backward_s,
            r.report.update_s,
            r.report.total_s(),
            r.speedup
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// Fig. 3(a): baseline training-time breakdown for GPT-2 2.5B / 8.3B / 20.5B
/// with a single SSD — the motivation that the update phase dominates.
pub fn fig3a() -> Vec<BreakdownRow> {
    [ModelConfig::gpt2_2_5b(), ModelConfig::gpt2_8_3b(), ModelConfig::gpt2_20_5b()]
        .into_iter()
        .map(|model| {
            let label = model.name().to_string();
            let report = BaselineEngine::new(
                MachineConfig::baseline_raid0(1),
                Workload::paper_default(model),
                OptimizerKind::Adam,
            )
            .simulate_iteration()
            .expect("baseline simulation");
            BreakdownRow { label, report, speedup: 1.0 }
        })
        .collect()
}

/// One point of the RAID0 scaling study.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Number of storage devices.
    pub num_devices: usize,
    /// Iteration time in seconds.
    pub total_s: f64,
    /// Speedup normalised to the 1-device configuration.
    pub normalized_speedup: f64,
}

/// Fig. 3(b): normalised speedup of the RAID0 baseline for 1–10 SSDs,
/// saturating once the aggregate SSD bandwidth reaches the shared interconnect.
pub fn fig3b() -> Vec<ScalingPoint> {
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    let times: Vec<(usize, f64)> = [1usize, 2, 4, 6, 8, 10]
        .into_iter()
        .map(|n| {
            let t = BaselineEngine::new(
                MachineConfig::baseline_raid0(n),
                workload.clone(),
                OptimizerKind::Adam,
            )
            .simulate_iteration()
            .expect("baseline simulation")
            .total_s();
            (n, t)
        })
        .collect();
    let t1 = times[0].1;
    times
        .into_iter()
        .map(|(n, t)| ScalingPoint { num_devices: n, total_s: t, normalized_speedup: t1 / t })
        .collect()
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// One row of the interconnect-traffic table, in the paper's `M` units.
#[derive(Debug, Clone, Serialize)]
pub struct TrafficRow {
    /// Method label.
    pub method: String,
    /// Optimizer-state bytes read, in M.
    pub opt_read_m: f64,
    /// Optimizer-state bytes written, in M.
    pub opt_write_m: f64,
    /// Gradient bytes read, in M.
    pub grad_read_m: f64,
    /// Gradient bytes written, in M.
    pub grad_write_m: f64,
    /// Updated parameters streamed upstream, in M.
    pub param_up_m: f64,
}

/// Table I: per-iteration system-interconnect traffic for ZeRO-Infinity,
/// SmartUpdate and SmartComp (2%). The traffic rows are *derived* from the
/// method's capability axes (`TrafficMethod::from(&spec)`) — the paper's row
/// names just relabel the baseline/SmartUpdate specs.
pub fn tab1() -> Vec<TrafficRow> {
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    let m = workload.model_bytes_fp16() as f64;
    let model = TrafficModel::new(workload, OptimizerKind::Adam);
    [
        ("ZeRO-Inf", MethodSpec::baseline()),
        ("SmartUpdate", MethodSpec::smart_update_optimized()),
        ("SmartComp (2%)", MethodSpec::smart_comp(0.01)),
    ]
    .into_iter()
    .map(|(label, spec)| {
        let t = model.per_iteration(TrafficMethod::from(&spec)).in_m_units(m);
        TrafficRow {
            method: label.to_string(),
            opt_read_m: t.optimizer_read,
            opt_write_m: t.optimizer_write,
            grad_read_m: t.gradient_read,
            grad_write_m: t.gradient_write,
            param_up_m: t.parameter_upstream,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------------

/// FPGA resource-utilisation row (percent of the KU15P budget).
#[derive(Debug, Clone, Serialize)]
pub struct ResourceRow {
    /// Kernel configuration.
    pub module: String,
    /// LUT utilisation percent.
    pub lut_pct: f64,
    /// BRAM utilisation percent.
    pub bram_pct: f64,
    /// URAM utilisation percent.
    pub uram_pct: f64,
    /// DSP utilisation percent.
    pub dsp_pct: f64,
}

/// Table III: resource utilisation of the Adam updater, and of the Adam
/// updater combined with the Top-K decompressor.
pub fn tab3() -> Vec<ResourceRow> {
    let device = smart_infinity::FpgaResources::ku15p();
    let model = smart_infinity::KernelResourceModel::default();
    let make = |module: &str, util: csd::ResourceUtilization| {
        let (lut, bram, uram, dsp) = util.percentages(&device);
        ResourceRow {
            module: module.to_string(),
            lut_pct: lut,
            bram_pct: bram,
            uram_pct: uram,
            dsp_pct: dsp,
        }
    };
    vec![
        make("Adam", model.updater(64)),
        make("Adam w/ Top-K", model.updater_with_decompressor(64)),
    ]
}

// ---------------------------------------------------------------------------
// Figures 9, 10, 12, 13: method-ladder sweeps
// ---------------------------------------------------------------------------

fn ladder_rows(
    label_prefix: &str,
    machine: MachineConfig,
    workload: Workload,
    optimizer: OptimizerKind,
    methods: &[Method],
) -> Vec<BreakdownRow> {
    let experiment = Experiment::new(machine, workload).with_optimizer(optimizer);
    experiment
        .compare(methods)
        .expect("simulation")
        .into_iter()
        .map(|r| BreakdownRow {
            label: format!("{label_prefix} {}", r.label),
            report: r.report,
            speedup: r.speedup,
        })
        .collect()
}

/// Fig. 9: breakdown and speedup of the full ablation ladder for GPT-2
/// 4.0B / 8.4B and BERT 4.0B / 8.3B with 6 and 10 devices.
pub fn fig9() -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    let models = [
        ModelConfig::gpt2_4b(),
        ModelConfig::gpt2_8_4b(),
        ModelConfig::bert_4b(),
        ModelConfig::bert_8_3b(),
    ];
    for model in models {
        for n in [6usize, 10] {
            rows.extend(ladder_rows(
                &format!("{} #SSD={n}", model.name()),
                MachineConfig::smart_infinity(n),
                Workload::paper_default(model.clone()),
                OptimizerKind::Adam,
                &Method::ladder(),
            ));
        }
    }
    rows
}

/// Fig. 10: scalability to larger models (16.6B / 24.8B / 33.0B) with 6 and
/// 10 devices, comparing BASE, SU+O and SU+O+C.
pub fn fig10() -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    let methods =
        [Method::Baseline, Method::SmartUpdateOptimized, Method::SmartComp { keep_ratio: 0.01 }];
    for model in [ModelConfig::gpt2_16_6b(), ModelConfig::gpt2_24_8b(), ModelConfig::gpt2_33b()] {
        for n in [6usize, 10] {
            rows.extend(ladder_rows(
                &format!("{} #SSD={n}", model.name()),
                MachineConfig::smart_infinity(n),
                Workload::paper_default(model.clone()),
                OptimizerKind::Adam,
                &methods,
            ));
        }
    }
    rows
}

/// One point of the CSD-count scaling study (Fig. 11a).
#[derive(Debug, Clone, Serialize)]
pub struct CsdScalingPoint {
    /// GPU model name.
    pub gpu: String,
    /// Method label.
    pub method: String,
    /// Number of storage devices.
    pub num_devices: usize,
    /// Speedup normalised to the 1-SSD baseline on the same GPU.
    pub normalized_speedup: f64,
}

/// Fig. 11(a): scalability with the number of CSDs (1–10) for the baseline,
/// SU+O and SU+O+C, on the A5000 and the A100, normalised to the 1-SSD
/// baseline of the same GPU.
pub fn fig11a() -> Vec<CsdScalingPoint> {
    let mut points = Vec::new();
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    for gpu in [GpuSpec::a5000(), GpuSpec::a100()] {
        let base_1 = BaselineEngine::new(
            MachineConfig::baseline_raid0(1).with_gpu(gpu.clone()),
            workload.clone(),
            OptimizerKind::Adam,
        )
        .simulate_iteration()
        .expect("simulation")
        .total_s();
        for n in [1usize, 2, 4, 6, 8, 10] {
            let machine = MachineConfig::smart_infinity(n).with_gpu(gpu.clone());
            for method in [
                Method::Baseline,
                Method::SmartUpdateOptimized,
                Method::SmartComp { keep_ratio: 0.01 },
            ] {
                let t = Session::builder(ModelConfig::gpt2_4b(), machine.clone(), method)
                    .build()
                    .simulate_iteration()
                    .expect("simulation")
                    .total_s();
                points.push(CsdScalingPoint {
                    gpu: gpu.name.clone(),
                    method: method.to_string(),
                    num_devices: n,
                    normalized_speedup: base_1 / t,
                });
            }
        }
    }
    points
}

/// Fig. 11(b): breakdown with ten devices on the A5000 and the A100.
pub fn fig11b() -> Vec<BreakdownRow> {
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    let mut rows = Vec::new();
    for gpu in [GpuSpec::a5000(), GpuSpec::a100()] {
        rows.extend(ladder_rows(
            &format!("{} #SSD=10", gpu.name),
            MachineConfig::smart_infinity(10).with_gpu(gpu.clone()),
            workload.clone(),
            OptimizerKind::Adam,
            &[
                Method::Baseline,
                Method::SmartUpdateOptimized,
                Method::SmartComp { keep_ratio: 0.01 },
            ],
        ));
    }
    rows
}

/// Fig. 12: applying SmartUpdate to SGD-with-momentum and AdaGrad (GPT-2 4.0B).
pub fn fig12() -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    for (name, optimizer) in
        [("SGD", OptimizerKind::SgdMomentum), ("AdaGrad", OptimizerKind::AdaGrad)]
    {
        for n in [6usize, 10] {
            rows.extend(ladder_rows(
                &format!("{name} #SSD={n}"),
                MachineConfig::smart_infinity(n),
                Workload::paper_default(ModelConfig::gpt2_4b()),
                optimizer,
                &[
                    Method::Baseline,
                    Method::SmartUpdateOptimized,
                    Method::SmartComp { keep_ratio: 0.01 },
                ],
            ));
        }
    }
    rows
}

/// Fig. 13: applying Smart-Infinity to BLOOM (3B, 7.1B) and ViT (0.30B, 0.63B).
pub fn fig13() -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    let models = [
        ModelConfig::bloom_3b(),
        ModelConfig::bloom_7_1b(),
        ModelConfig::vit_0_30b(),
        ModelConfig::vit_0_63b(),
    ];
    for model in models {
        for n in [6usize, 10] {
            rows.extend(ladder_rows(
                &format!("{} #SSD={n}", model.name()),
                MachineConfig::smart_infinity(n),
                Workload::paper_default(model.clone()),
                OptimizerKind::Adam,
                &[
                    Method::Baseline,
                    Method::SmartUpdateOptimized,
                    Method::SmartComp { keep_ratio: 0.01 },
                ],
            ));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 14: kernel throughput
// ---------------------------------------------------------------------------

/// One bar group of the kernel-throughput comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Model size label.
    pub model: String,
    /// Updater kernel throughput in GB/s.
    pub updater_gbps: f64,
    /// Decompressor + updater effective throughput in GB/s.
    pub decompress_update_gbps: f64,
    /// SSD sequential read bandwidth in GB/s.
    pub ssd_read_gbps: f64,
    /// SSD sequential write bandwidth in GB/s.
    pub ssd_write_gbps: f64,
}

/// Fig. 14: throughput of the updater and decompressor kernels compared to the
/// SSD read/write bandwidth, for model sizes from 0.34B to 8.4B.
pub fn fig14() -> Vec<ThroughputRow> {
    let updater = csd::Updater::default();
    let decompressor = csd::Decompressor::default();
    let ssd = ssd::BandwidthProfile::smartssd_nvme();
    [
        ModelConfig::gpt2_0_34b(),
        ModelConfig::gpt2_1_7b(),
        ModelConfig::gpt2_4b(),
        ModelConfig::gpt2_8_4b(),
    ]
    .into_iter()
    .map(|model| {
        let up = updater.throughput_bytes_per_sec(OptimizerKind::Adam);
        let dec = decompressor.throughput_bytes_per_sec(0.01);
        ThroughputRow {
            model: model.name().to_string(),
            updater_gbps: up / 1e9,
            decompress_update_gbps: dec.min(up) / 1e9,
            ssd_read_gbps: ssd.read_bytes_per_sec / 1e9,
            ssd_write_gbps: ssd.write_bytes_per_sec / 1e9,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Figure 15: cost efficiency
// ---------------------------------------------------------------------------

/// One point of the cost-efficiency study.
#[derive(Debug, Clone, Serialize)]
pub struct CostPoint {
    /// GPU model name.
    pub gpu: String,
    /// Method label ("ZeRO-Inf" or "Smart-Inf").
    pub method: String,
    /// Number of storage devices.
    pub num_devices: usize,
    /// Achieved GFLOPS per dollar of system cost.
    pub gflops_per_dollar: f64,
}

/// Fig. 15: GFLOPS/$ of the baseline (plain SSDs) and Smart-Infinity
/// (SmartSSDs) as the device count grows, for the A5000 and A100.
pub fn fig15() -> Vec<CostPoint> {
    let cost = CostModel::default();
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    let flops = workload.training_flops();
    let mut points = Vec::new();
    for gpu in [GpuSpec::a5000(), GpuSpec::a100()] {
        for n in [1usize, 2, 4, 6, 8, 10] {
            let machine = MachineConfig::smart_infinity(n).with_gpu(gpu.clone());
            let run = |method: Method| {
                Session::builder(ModelConfig::gpt2_4b(), machine.clone(), method)
                    .build()
                    .simulate_iteration()
                    .expect("simulation")
                    .total_s()
            };
            let base_t = run(Method::Baseline);
            let smart_t = run(Method::SmartComp { keep_ratio: 0.01 });
            points.push(CostPoint {
                gpu: gpu.name.clone(),
                method: "ZeRO-Inf".to_string(),
                num_devices: n,
                gflops_per_dollar: CostModel::gflops_per_dollar(
                    flops / base_t,
                    cost.baseline_system_usd(&gpu, n),
                ),
            });
            points.push(CostPoint {
                gpu: gpu.name.clone(),
                method: "Smart-Inf".to_string(),
                num_devices: n,
                gflops_per_dollar: CostModel::gflops_per_dollar(
                    flops / smart_t,
                    cost.smart_infinity_system_usd(&gpu, n),
                ),
            });
        }
    }
    points
}

// ---------------------------------------------------------------------------
// Table IV and Figure 16: fine-tuning accuracy and compression sensitivity
// ---------------------------------------------------------------------------

/// Accuracy and speedup of one fine-tuning configuration.
#[derive(Debug, Clone, Serialize)]
pub struct FinetuneRow {
    /// Model being fine-tuned (speedup column) .
    pub model: String,
    /// Method label (Baseline / SU+O / SU+O+C at a ratio).
    pub method: String,
    /// Iteration-time speedup over the baseline with 6 devices.
    pub speedup: f64,
    /// Held-out accuracy per GLUE-like task, in suite order
    /// (MNLI-like, QQP-like, SST2-like, QNLI-like), in percent.
    pub accuracies_pct: Vec<f64>,
}

/// The compression settings of Table IV: transfer ratios 10%, 5%, 2%, 1%
/// (keep ratios of half that).
pub fn tab4_transfer_ratios() -> Vec<f64> {
    vec![0.10, 0.05, 0.02, 0.01]
}

/// Table IV: fine-tuning accuracy (real optimisation runs on the GLUE-like
/// suite) and iteration-time speedup (timed model, 6 devices) for BERT-0.34B,
/// GPT2-0.77B and GPT2-1.6B across compression ratios.
///
/// `epochs` controls the accuracy-run length (3 reproduces the paper's setup;
/// 1 is enough for a quick smoke run).
pub fn tab4(epochs: usize) -> Vec<FinetuneRow> {
    let suite = Dataset::glue_like_suite(2024);
    let mlp = MlpModel::new(32, 48, 3);
    // Datasets have different input dims; build one model per dataset.
    let accuracy_suite = |keep_ratio: Option<f64>| -> Vec<f64> {
        suite
            .iter()
            .map(|ds| {
                let model = MlpModel::new(ds.input_dim, mlp.hidden_dim, ds.num_classes);
                let config = TrainConfig { epochs, keep_ratio, ..TrainConfig::default() };
                train_classifier(&model, ds, &config).test_accuracy * 100.0
            })
            .collect()
    };

    let models = [ModelConfig::bert_0_34b(), ModelConfig::gpt2_0_77b(), ModelConfig::gpt2_1_6b()];
    let mut rows = Vec::new();
    for model in models {
        let run = |method: Method| {
            Session::builder(model.clone(), MachineConfig::smart_infinity(6), method)
                .build()
                .simulate_iteration()
                .expect("simulation")
        };
        let base = run(Method::Baseline);
        let mut push = |method: Method, label: String, keep: Option<f64>| {
            let report = run(method);
            rows.push(FinetuneRow {
                model: model.name().to_string(),
                method: label,
                speedup: report.speedup_over(&base),
                accuracies_pct: accuracy_suite(keep),
            });
        };
        push(Method::Baseline, "Baseline".to_string(), None);
        push(Method::SmartUpdateOptimized, "SU+O".to_string(), None);
        for transfer in tab4_transfer_ratios() {
            let keep = transfer / 2.0;
            push(
                Method::SmartComp { keep_ratio: keep },
                format!("SU+O+C ({:.0}%)", transfer * 100.0),
                Some(keep),
            );
        }
    }
    rows
}

/// One point of the compression-ratio sensitivity study (Fig. 16).
#[derive(Debug, Clone, Serialize)]
pub struct CompressionSensitivityPoint {
    /// Model name.
    pub model: String,
    /// Number of storage devices.
    pub num_devices: usize,
    /// Method label ("SU+O" or a transfer-ratio percentage).
    pub setting: String,
    /// Iteration time in seconds.
    pub total_s: f64,
}

/// Fig. 16: training-time sensitivity to the Top-K compression ratio for
/// BERT-0.34B and GPT-2 4.0B with 6 and 10 devices.
pub fn fig16() -> Vec<CompressionSensitivityPoint> {
    let mut points = Vec::new();
    for model in [ModelConfig::bert_0_34b(), ModelConfig::gpt2_4b()] {
        for n in [6usize, 10] {
            let run = |method: Method| {
                Session::builder(model.clone(), MachineConfig::smart_infinity(n), method)
                    .build()
                    .simulate_iteration()
                    .expect("simulation")
            };
            let su_o = run(Method::SmartUpdateOptimized);
            points.push(CompressionSensitivityPoint {
                model: model.name().to_string(),
                num_devices: n,
                setting: "SU+O".to_string(),
                total_s: su_o.total_s(),
            });
            for transfer in [0.10, 0.05, 0.02, 0.01] {
                let t = run(Method::SmartComp { keep_ratio: transfer / 2.0 }).total_s();
                points.push(CompressionSensitivityPoint {
                    model: model.name().to_string(),
                    num_devices: n,
                    setting: format!("{:.0}%", transfer * 100.0),
                    total_s: t,
                });
            }
        }
    }
    points
}

// ---------------------------------------------------------------------------
// Figure 17: congested multi-GPU topology
// ---------------------------------------------------------------------------

/// Fig. 17(b): baseline vs Smart-Infinity on the congested topology where 1–3
/// A4000 GPUs share the expansion switch with ten CSDs (GPT-2 1.16B).
pub fn fig17() -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    for gpus in 1..=3usize {
        let experiment = Experiment::new(
            MachineConfig::congested_multi_gpu(10, gpus),
            Workload::paper_default(ModelConfig::gpt2_1_16b()),
        );
        rows.extend(
            experiment
                .compare(&[Method::Baseline, Method::SmartComp { keep_ratio: 0.01 }])
                .expect("simulation")
                .into_iter()
                .map(|r| BreakdownRow {
                    label: format!("{gpus}xA4000 {}", r.label),
                    report: r.report,
                    speedup: r.speedup,
                }),
        );
    }
    rows
}

// ---------------------------------------------------------------------------
// Pipelined-backend overlap study (timed view)
// ---------------------------------------------------------------------------

/// One row of the pipelined-backend study: the phase breakdown plus the
/// stage-level occupancy of the shared uplink.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineRow {
    /// Configuration label.
    pub label: String,
    /// Per-phase breakdown of one iteration.
    pub report: IterationReport,
    /// Speedup over the serial SU+O schedule of the same machine.
    pub speedup_over_serial: f64,
    /// Seconds of update work that overlapped the backward phase.
    pub update_overlap_s: f64,
    /// Downstream host-uplink occupancy of the write stage.
    pub uplink_write_busy_s: f64,
    /// Upstream host-uplink occupancy of the read-back stage.
    pub uplink_readback_busy_s: f64,
}

/// The pipelined execution backend study (GPT-2 4.0B): serial SU+O vs the
/// pipelined schedule, dense and compressed, at 6 and 10 devices — the
/// stage-level uplink accounting that complements the paper's method ladder.
pub fn pipeline_overlap() -> Vec<PipelineRow> {
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    let mut rows = Vec::new();
    for n in [6usize, 10] {
        let engine = || {
            SmartInfinityEngine::new(
                MachineConfig::smart_infinity(n),
                workload.clone(),
                OptimizerKind::Adam,
            )
        };
        let serial = engine().simulate_iteration_stages().expect("simulation");
        let configs = [
            (format!("#SSD={n} SU+O (serial)"), engine()),
            (format!("#SSD={n} SU+O+P"), engine().with_pipelining()),
            (format!("#SSD={n} SU+O+P+C(2%)"), engine().with_pipelining().with_compression(0.01)),
        ];
        for (label, engine) in configs {
            let timing = engine.simulate_iteration_stages().expect("simulation");
            rows.push(PipelineRow {
                label,
                speedup_over_serial: timing.report.speedup_over(&serial.report),
                update_overlap_s: timing.update_overlap_s,
                uplink_write_busy_s: timing.uplink_write_busy_s,
                uplink_readback_busy_s: timing.uplink_readback_busy_s,
                report: timing.report,
            });
        }
    }
    rows
}

/// Renders the pipeline study as a fixed-width text table.
pub fn render_pipeline(rows: &[PipelineRow]) -> String {
    let mut out =
        String::from("Pipelined execution backend: stage overlap and shared-uplink occupancy\n");
    out.push_str(&format!(
        "{:<24} {:>10} {:>9} {:>11} {:>12} {:>12}\n",
        "config", "Total (s)", "speedup", "overlap (s)", "uplink W (s)", "uplink R (s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<24} {:>10.2} {:>8.2}x {:>11.2} {:>12.2} {:>12.2}\n",
            r.label,
            r.report.total_s(),
            r.speedup_over_serial,
            r.update_overlap_s,
            r.uplink_write_busy_s,
            r.uplink_readback_busy_s
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Campaigns: spec-driven sweeps
// ---------------------------------------------------------------------------

/// The reference campaign the perf snapshot times: the paper's ablation
/// ladder plus both pipelined points (GPT-2 4.0B, 6 devices) — the same six
/// specs `specs/ladder.json` checks in.
pub fn ladder_campaign() -> Campaign {
    let mut methods = MethodSpec::ladder();
    methods.push(MethodSpec::pipelined(None));
    methods.push(MethodSpec::pipelined(Some(0.01)));
    Campaign::new(
        methods
            .into_iter()
            .map(|method| {
                RunSpec::new(ModelSpec::preset("GPT2-4.0B"), MachineSpec::devices(6), method)
            })
            .collect(),
    )
    .with_name("ladder")
}

/// Renders a campaign report as a fixed-width text table.
pub fn render_campaign(report: &CampaignReport) -> String {
    let mut out = format!(
        "Campaign{}: {} specs on {} worker(s), {} CPU(s)\n",
        report.name.as_deref().map(|n| format!(" `{n}`")).unwrap_or_default(),
        report.runs.len(),
        report.threads,
        report.num_cpus
    );
    if !report.parallel_valid {
        out.push_str(
            "NOTE: specs ran without real concurrency (1 worker or 1 CPU); results are\n\
             identical either way — only wall-clock differs on a multi-core box.\n",
        );
    }
    out.push_str(&format!(
        "{:<34} {:>8} {:>10} {:>10} {:>10} {:>9}\n",
        "spec", "FW (s)", "BW+Grad(s)", "Update(s)", "Total (s)", "Speedup"
    ));
    for r in &report.runs {
        out.push_str(&format!(
            "{:<34} {:>8.2} {:>10.2} {:>10.2} {:>10.2} {:>8.2}x\n",
            r.label,
            r.report.forward_s,
            r.report.backward_s,
            r.report.update_s,
            r.report.total_s(),
            r.speedup_over_first
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// campaignd: the serve driver (`figures -- serve`)
// ---------------------------------------------------------------------------

/// Options of the [`serve_campaign`] driver.
#[derive(Debug, Clone, Copy)]
pub struct ServeOpts {
    /// Number of simulated client threads submitting concurrently.
    pub clients: usize,
    /// Full passes over the spec list each client submits (pass 2+ of an
    /// unchanged list must be 100% cache hits).
    pub passes: usize,
    /// Service queue depth ([`ServiceConfig::queue_depth`]).
    pub queue_depth: usize,
    /// Admission batch size ([`ServiceConfig::admission_batch`]).
    pub admission_batch: usize,
}

impl Default for ServeOpts {
    /// 2 clients, 2 passes, default service knobs.
    fn default() -> Self {
        let config = ServiceConfig::default();
        ServeOpts {
            clients: 2,
            passes: 2,
            queue_depth: config.queue_depth,
            admission_batch: config.admission_batch,
        }
    }
}

/// Offered load and cache behaviour of one pass over the spec list.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServePass {
    /// 1-based pass number.
    pub pass: usize,
    /// Submissions accepted during this pass (all clients).
    pub submitted: u64,
    /// Of those, answered from the content-addressed cache.
    pub cache_hits: u64,
}

/// The result of driving a campaign through the `campaignd` service.
#[derive(Debug, Clone, Serialize)]
pub struct ServeOutcome {
    /// The campaign's name, if any.
    pub campaign: Option<String>,
    /// Simulated clients.
    pub clients: usize,
    /// Specs each client submitted per pass (the spec-list length, which may
    /// contain canonical duplicates on purpose).
    pub specs_per_pass: usize,
    /// Distinct canonical specs in the list — the ceiling on executions.
    pub unique_specs: usize,
    /// Unique-spec executions actually run; equals `unique_specs` when dedup
    /// held (every duplicate was coalesced or served from cache).
    pub executions: u64,
    /// Per-pass offered load and cache hits.
    pub passes: Vec<ServePass>,
    /// CPUs available to the process when the serve ran.
    pub num_cpus: usize,
    /// Worker threads of the executor the service dispatched on.
    pub threads: usize,
    /// Whether concurrent execution could actually help on this host (same
    /// caveat as [`CampaignReport::parallel_valid`]: on a 1-CPU box the
    /// latency numbers time-slice one core, so wall-clock comparisons — and
    /// the dormant speedup-ratio perf gate — are not meaningful there).
    pub parallel_valid: bool,
    /// The service-wide telemetry (counters, per-client fairness, latency
    /// distributions).
    pub report: ServiceReport,
}

/// Drives `campaign` through a fresh [`CampaignService`]: `opts.clients`
/// threads each submit the full spec list `opts.passes` times (each client
/// starts at a rotated offset so the overlap is in-flight, not only cached)
/// and await every result. Pass boundaries are barriers — every job of a
/// pass completes before the next pass starts — so with an unchanged spec
/// list every pass after the first is answered entirely from cache. A
/// [`ServiceError::QueueFull`] rejection makes the client settle its oldest
/// outstanding job (draining the queue) and resubmit.
///
/// # Errors
///
/// Returns the first [`ServiceError`] a client hit that back-pressure cannot
/// resolve: an invalid spec, or a failed execution.
pub fn serve_campaign(
    campaign: &Campaign,
    opts: &ServeOpts,
    pool: &ParExecutor,
) -> Result<ServeOutcome, ServiceError> {
    let service = CampaignService::new(ServiceConfig::new(opts.queue_depth, opts.admission_batch));
    let clients = opts.clients.max(1);
    let specs_per_pass = campaign.specs.len();
    let unique_specs = {
        let mut canon: Vec<String> =
            campaign.specs.iter().map(smart_infinity::RunSpec::canonical_json).collect();
        canon.sort();
        canon.dedup();
        canon.len()
    };
    let mut passes = Vec::new();
    for pass in 1..=opts.passes.max(1) {
        let before = service.report();
        std::thread::scope(|scope| -> Result<(), ServiceError> {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let service = &service;
                    scope.spawn(move || -> Result<(), ServiceError> {
                        let mut outstanding = std::collections::VecDeque::new();
                        for k in 0..specs_per_pass {
                            let spec = &campaign.specs[(client + k) % specs_per_pass];
                            loop {
                                match service.submit(client, spec) {
                                    Ok(id) => {
                                        outstanding.push_back(id);
                                        break;
                                    }
                                    Err(ServiceError::QueueFull { .. }) => {
                                        match outstanding.pop_front() {
                                            Some(id) => {
                                                service.await_result(id, pool)?;
                                            }
                                            None => {
                                                service.tick(pool);
                                            }
                                        }
                                    }
                                    Err(error) => return Err(error),
                                }
                            }
                        }
                        for id in outstanding {
                            service.await_result(id, pool)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("serve client panicked")?;
            }
            Ok(())
        })?;
        let after = service.report();
        passes.push(ServePass {
            pass,
            submitted: after.submitted - before.submitted,
            cache_hits: after.cache_hits - before.cache_hits,
        });
    }
    let num_cpus = ParExecutor::current().num_threads();
    Ok(ServeOutcome {
        campaign: campaign.name.clone(),
        clients,
        specs_per_pass,
        unique_specs,
        executions: service.executions(),
        passes,
        num_cpus,
        threads: pool.num_threads(),
        parallel_valid: num_cpus > 1 && pool.num_threads() > 1,
        report: service.report(),
    })
}

/// Renders a serve outcome as text: per-pass hit rates, the dedup proof,
/// per-client fairness and the latency distributions.
pub fn render_serve(outcome: &ServeOutcome) -> String {
    let mut out = format!(
        "campaignd serve{}: {} client(s) x {} pass(es) x {} spec(s) ({} unique) \
         on {} worker(s), {} CPU(s)\n",
        outcome.campaign.as_deref().map(|n| format!(" `{n}`")).unwrap_or_default(),
        outcome.clients,
        outcome.passes.len(),
        outcome.specs_per_pass,
        outcome.unique_specs,
        outcome.threads,
        outcome.num_cpus
    );
    if !outcome.parallel_valid {
        out.push_str(
            "NOTE: dispatched without real concurrency (1 worker or 1 CPU); dedup and cache\n\
             behaviour are identical — only the latency numbers are not comparable across\n\
             machines (the same caveat that keeps the BENCH_2 speedup-ratio gate dormant).\n",
        );
    }
    for pass in &outcome.passes {
        let pct = if pass.submitted == 0 {
            0.0
        } else {
            100.0 * pass.cache_hits as f64 / pass.submitted as f64
        };
        out.push_str(&format!(
            "pass {}: {} submitted, {} cache hit(s) ({pct:.0}%)\n",
            pass.pass, pass.submitted, pass.cache_hits
        ));
    }
    let r = &outcome.report;
    out.push_str(&format!(
        "executions {} (unique specs {}), coalesced {}, rejected {}, failed {}\n",
        outcome.executions, outcome.unique_specs, r.coalesced, r.rejected, r.failed
    ));
    out.push_str(&format!(
        "service totals: {} submitted, {} cache hit(s) ({:.0}% hit rate), queue depth {}\n",
        r.submitted,
        r.cache_hits,
        100.0 * r.cache_hit_rate(),
        r.queue_depth
    ));
    out.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>10} {:>9} {:>12}\n",
        "client", "submitted", "completed", "hits", "rejected", "max wait (s)"
    ));
    for (client, stats) in r.clients.iter().enumerate() {
        out.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>10} {:>9} {:>12.4}\n",
            client,
            stats.submitted,
            stats.completed,
            stats.cache_hits,
            stats.rejected,
            stats.max_queue_wait_s
        ));
    }
    out.push_str(&format!(
        "queue wait (s): mean {:.4}  p50 {:.4}  p95 {:.4}  max {:.4}\n",
        r.queue_wait.mean_s, r.queue_wait.p50_s, r.queue_wait.p95_s, r.queue_wait.max_s
    ));
    out.push_str(&format!(
        "run time  (s): mean {:.4}  p50 {:.4}  p95 {:.4}  max {:.4}\n",
        r.run_time.mean_s, r.run_time.p50_s, r.run_time.p95_s, r.run_time.max_s
    ));
    out
}

// ---------------------------------------------------------------------------
// BENCH_2: execution-backend performance snapshot
// ---------------------------------------------------------------------------

/// One point of a per-kernel thread sweep: throughput at a worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadPoint {
    /// Worker-thread count the measurement ran with.
    pub threads: usize,
    /// Throughput at that worker count, elements per second.
    pub elems_per_sec: f64,
}

/// Measured throughput of one kernel, serial vs parallel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelPerf {
    /// Kernel name.
    pub kernel: String,
    /// SIMD path the kernel's hot loop dispatched to when measured
    /// (`scalar`, `sse2` or `avx2`) — snapshots from machines with different
    /// vector units are not directly comparable, and the perf gate skips
    /// absolute-throughput checks when the paths differ.
    pub kernel_path: KernelPath,
    /// Serial throughput in elements per second.
    pub serial_elems_per_sec: f64,
    /// Parallel throughput in elements per second (at `threads` workers).
    pub parallel_elems_per_sec: f64,
    /// `serial / parallel` wall-clock ratio, or `None` when the snapshot was
    /// taken on a single-CPU machine — there the worker threads time-slice
    /// one core and the ratio would be misleading, so it is not recorded.
    pub speedup: Option<f64>,
    /// Throughput at each swept worker count (telemetry; the gate only
    /// checks the serial and parallel rates above).
    pub per_thread_elems_per_sec: Vec<ThreadPoint>,
}

/// Wall-clock of the reference spec campaign ([`ladder_campaign`]), serial
/// vs fanned out on `parcore` workers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignPerf {
    /// Number of specs in the campaign.
    pub specs: usize,
    /// Seconds for one serial pass over all specs.
    pub serial_s: f64,
    /// Seconds with the specs fanned out across the workers.
    pub parallel_s: f64,
    /// `serial / parallel`, or `None` on a single-CPU machine (the caveat
    /// recorded by `parallel_valid`).
    pub speedup: Option<f64>,
    /// How many of the campaign's specs carried a fault-injection axis when
    /// the snapshot was taken. Fault recovery adds modeled backoff and
    /// derated bandwidth on purpose, so the gate refuses to compare
    /// wall-clocks when either side is non-zero. `None` in snapshots blessed
    /// before fault injection existed (treated as zero).
    pub fault_specs: Option<usize>,
}

impl CampaignPerf {
    /// `true` when the measured campaign injected faults into any spec.
    pub fn has_faults(&self) -> bool {
        self.fault_specs.unwrap_or(0) > 0
    }
}

/// The tracked performance snapshot of the execution backend (`BENCH_2.json`):
/// elements/second of the hot kernels, serial and parallel, so future PRs
/// have a trajectory to compare against. Numbers are machine-dependent; the
/// snapshot records the CPU count it was measured on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfSnapshot {
    /// CPUs available to the measuring process (parallel speedup is bounded
    /// by this: on a 1-CPU container the ratio cannot exceed ~1.0).
    pub num_cpus: usize,
    /// SIMD path active on the measuring machine ([`KernelPath::active`]).
    pub kernel_path: KernelPath,
    /// Whether the parallel measurements are meaningful: `false` when only
    /// one CPU was visible, in which case the per-kernel `speedup` ratios are
    /// omitted (see the BENCH_2.json caveat in ROADMAP.md).
    pub parallel_valid: bool,
    /// Worker-thread count used for the parallel measurements.
    pub threads: usize,
    /// Tensor length every kernel ran over.
    pub elems: usize,
    /// Updater (Adam step), Top-K compressor, and related kernel rates.
    pub kernels: Vec<KernelPerf>,
    /// f32 → f16-bytes serialisation rate, elements per second.
    pub f16_to_bytes_elems_per_sec: f64,
    /// f16-bytes → f32 deserialisation rate (lookup-table bulk path).
    pub f16_from_bytes_elems_per_sec: f64,
    /// In-memory FP16 round-trip rate (`roundtrip_f16_into`).
    pub f16_roundtrip_elems_per_sec: f64,
    /// The spec-campaign runner, serial vs parallel over the ladder.
    pub campaign: CampaignPerf,
}

/// Best (minimum) wall-clock seconds of `reps` runs of `f`. The minimum is
/// the noise-robust estimator the regression gate needs: scheduler
/// interference and co-tenant load only ever make a run *slower*, so the
/// fastest observation is the closest to the machine's actual capability and
/// is far more stable run-to-run than the median on a shared box.
fn best_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (also populates lazy tables)
    (0..reps.max(1))
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the execution-backend kernels. `quick` shrinks the tensor and the
/// repetition count (used by the CI smoke job); the checked-in snapshot is
/// produced with `quick = false`.
pub fn perf_snapshot(quick: bool) -> PerfSnapshot {
    use optim::Optimizer;
    use parcore::ParExecutor;
    use tensorlib::{Dtype, FlatTensor};

    let elems: usize = if quick { 1 << 18 } else { 1 << 20 };
    let reps = if quick { 3 } else { 5 };
    let threads = 4usize;
    let num_cpus = ParExecutor::current().num_threads();
    // A serial/parallel wall-clock ratio only means something when the
    // workers can actually run concurrently.
    let parallel_valid = num_cpus > 1;
    let pool = ParExecutor::new(threads);
    let rate = |secs: f64| elems as f64 / secs;
    // Worker counts each kernel is swept over; the first is the serial rate,
    // the last the headline parallel rate.
    let sweep = [1usize, 2, threads];
    // Assembles one kernel row from its sweep: serial = 1 worker, parallel =
    // `threads` workers, speedup only when the workers can actually run
    // concurrently.
    let kernel_perf = |kernel: &str, points: Vec<ThreadPoint>| {
        let serial = points.first().expect("sweep has a 1-worker point").elems_per_sec;
        let parallel = points.last().expect("sweep has a parallel point").elems_per_sec;
        KernelPerf {
            kernel: kernel.to_string(),
            kernel_path: KernelPath::active(),
            serial_elems_per_sec: serial,
            parallel_elems_per_sec: parallel,
            speedup: parallel_valid.then(|| parallel / serial),
            per_thread_elems_per_sec: points,
        }
    };

    let grads = FlatTensor::randn(elems, 0.01, 1);
    let mut kernels = Vec::new();

    // Updater: Adam, the paper's default optimizer.
    let optimizer = Optimizer::adam_default();
    let run_updater = |exec: &ParExecutor| {
        let mut params = FlatTensor::randn(elems, 0.02, 2);
        let mut aux = optimizer.init_aux(elems);
        let mut t = 0u64;
        best_secs(reps, || {
            t += 1;
            optimizer.par_step(exec, params.as_mut_slice(), &grads, &mut aux, t);
            std::hint::black_box(params.as_slice()[0]);
        })
    };
    let updater_points = sweep
        .iter()
        .map(|&t| ThreadPoint {
            threads: t,
            elems_per_sec: rate(run_updater(&ParExecutor::new(t))),
        })
        .collect();
    kernels.push(kernel_perf("updater_adam", updater_points));

    // Compressor: exact Top-K at the paper's default 1% keep ratio. The
    // 1-worker point uses the dedicated serial entry point, matching how the
    // compressor is called outside the parallel backend.
    let compressor = gradcomp::Compressor::top_k(0.01);
    let run_topk = |workers: usize| {
        if workers == 1 {
            best_secs(reps, || {
                std::hint::black_box(compressor.compress(&grads));
            })
        } else {
            let exec = ParExecutor::new(workers);
            best_secs(reps, || {
                std::hint::black_box(compressor.compress_par(&grads, &exec));
            })
        }
    };
    let topk_points = sweep
        .iter()
        .map(|&t| ThreadPoint { threads: t, elems_per_sec: rate(run_topk(t)) })
        .collect();
    kernels.push(kernel_perf("topk_exact_1pct", topk_points));

    // One full functional training step on the pipelined backend, 1 lane
    // worker vs `threads` lane workers (bit-identical results, different
    // wall-clock — the overlap the pipelined backend is for).
    let run_pipelined = |workers: usize| {
        let initial = FlatTensor::randn(elems, 0.02, 4);
        let mut trainer =
            PipelinedTrainer::new(&initial, optimizer, threads, elems.div_ceil(threads))
                .expect("pipelined trainer")
                .with_threads(workers);
        best_secs(reps, || {
            let report = trainer.train_step_with_grads(&grads).expect("pipelined step");
            std::hint::black_box(report.step);
        })
    };
    let pipelined_points = sweep
        .iter()
        .map(|&t| ThreadPoint { threads: t, elems_per_sec: rate(run_pipelined(t)) })
        .collect();
    kernels.push(kernel_perf("pipelined_step_adam", pipelined_points));

    // Half-precision conversion paths. One pass is only ~1 ms, so these get
    // extra repetitions — the minimum over a longer window is what keeps the
    // regression gate stable on a noisy shared machine.
    let f16_reps = reps * 3;
    let tensor = FlatTensor::randn(elems, 1.0, 3);
    let mut bytes = Vec::new();
    let to_bytes = best_secs(f16_reps, || {
        tensor.to_bytes_into(Dtype::F16, &mut bytes);
        std::hint::black_box(bytes.len());
    });
    let mut back = FlatTensor::default();
    let from_bytes = best_secs(f16_reps, || {
        FlatTensor::from_bytes_into(&bytes, Dtype::F16, &mut back);
        std::hint::black_box(back.len());
    });
    let mut rounded = vec![0.0f32; elems];
    let roundtrip = best_secs(f16_reps, || {
        tensor.roundtrip_f16_into(&mut rounded);
        std::hint::black_box(rounded[0]);
    });

    // The spec-campaign runner: the checked-in ladder, serial vs fanned out.
    let serial = ParExecutor::serial();
    let campaign = ladder_campaign();
    let campaign_serial = best_secs(reps, || {
        let report = campaign.run_on(&serial).expect("campaign");
        std::hint::black_box(report.runs.len());
    });
    let campaign_parallel = best_secs(reps, || {
        let report = campaign.run_on(&pool).expect("campaign");
        std::hint::black_box(report.runs.len());
    });
    let fault_specs = campaign.specs.iter().filter(|s| s.faults.is_some()).count();
    let campaign = CampaignPerf {
        specs: campaign.specs.len(),
        serial_s: campaign_serial,
        parallel_s: campaign_parallel,
        speedup: parallel_valid.then(|| campaign_serial / campaign_parallel),
        fault_specs: Some(fault_specs),
    };

    PerfSnapshot {
        num_cpus,
        kernel_path: KernelPath::active(),
        parallel_valid,
        threads,
        elems,
        kernels,
        f16_to_bytes_elems_per_sec: rate(to_bytes),
        f16_from_bytes_elems_per_sec: rate(from_bytes),
        f16_roundtrip_elems_per_sec: rate(roundtrip),
        campaign,
    }
}

impl PerfSnapshot {
    /// Parses a snapshot back out of its checked-in JSON form (`BENCH_2.json`).
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid perf snapshot: {e}"))
    }
}

/// Merges two snapshots of the same machine into their best-rate envelope:
/// elementwise maximum of every throughput, minimum of every wall-clock.
///
/// External interference only ever *subtracts* throughput, so the envelope
/// over repeated measurements converges on the machine's actual capability.
/// Both the blessing path and the gate's noise-retry use this, keeping the
/// two sides of the comparison symmetric estimators.
pub fn merge_best(a: &PerfSnapshot, b: &PerfSnapshot) -> PerfSnapshot {
    let mut out = a.clone();
    for kernel in &mut out.kernels {
        let Some(other) = b.kernels.iter().find(|k| k.kernel == kernel.kernel) else {
            continue;
        };
        kernel.serial_elems_per_sec = kernel.serial_elems_per_sec.max(other.serial_elems_per_sec);
        kernel.parallel_elems_per_sec =
            kernel.parallel_elems_per_sec.max(other.parallel_elems_per_sec);
        kernel.speedup =
            kernel.speedup.map(|_| kernel.parallel_elems_per_sec / kernel.serial_elems_per_sec);
        for (point, other_point) in
            kernel.per_thread_elems_per_sec.iter_mut().zip(&other.per_thread_elems_per_sec)
        {
            point.elems_per_sec = point.elems_per_sec.max(other_point.elems_per_sec);
        }
    }
    out.f16_to_bytes_elems_per_sec =
        out.f16_to_bytes_elems_per_sec.max(b.f16_to_bytes_elems_per_sec);
    out.f16_from_bytes_elems_per_sec =
        out.f16_from_bytes_elems_per_sec.max(b.f16_from_bytes_elems_per_sec);
    out.f16_roundtrip_elems_per_sec =
        out.f16_roundtrip_elems_per_sec.max(b.f16_roundtrip_elems_per_sec);
    out.campaign.serial_s = out.campaign.serial_s.min(b.campaign.serial_s);
    out.campaign.parallel_s = out.campaign.parallel_s.min(b.campaign.parallel_s);
    out.campaign.speedup =
        out.campaign.speedup.map(|_| out.campaign.serial_s / out.campaign.parallel_s);
    // If either measurement injected faults, the envelope did too.
    out.campaign.fault_specs = match (out.campaign.fault_specs, b.campaign.fault_specs) {
        (Some(a_faults), Some(b_faults)) => Some(a_faults.max(b_faults)),
        (a_faults, b_faults) => a_faults.or(b_faults),
    };
    out
}

/// Outcome of gating a fresh [`PerfSnapshot`] against a checked-in baseline.
#[derive(Debug, Clone, Default)]
pub struct PerfComparison {
    /// Regressions beyond the tolerance — any entry fails the gate.
    pub violations: Vec<String>,
    /// Non-fatal observations (skipped checks and why, environment drift).
    pub notes: Vec<String>,
}

impl PerfComparison {
    /// `true` when no check regressed beyond the tolerance.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Gates `fresh` against `baseline`: every tracked throughput must stay
/// within `tolerance` (a fraction, e.g. `0.15` for ±15%) of the baseline.
///
/// Rules, matching the caveats recorded in the snapshot itself:
/// - Absolute throughputs (serial and parallel rates, f16 conversion rates,
///   campaign wall-clock) are gated only when both snapshots were measured on
///   the same SIMD path — a baseline blessed on an AVX2 box is not comparable
///   to a scalar-only runner, so path drift becomes a note, not a failure.
/// - Serial/parallel *ratio* checks additionally require `parallel_valid` on
///   both sides; on a 1-CPU machine the ratio is meaningless and skipped.
/// - The per-thread sweep is telemetry and never gated.
pub fn compare_perf(
    baseline: &PerfSnapshot,
    fresh: &PerfSnapshot,
    tolerance: f64,
) -> PerfComparison {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let mut cmp = PerfComparison::default();
    let floor = 1.0 - tolerance;
    let ceil = 1.0 + tolerance;

    let paths_match = baseline.kernel_path == fresh.kernel_path;
    if !paths_match {
        cmp.notes.push(format!(
            "kernel path changed ({} -> {}); absolute throughput checks skipped — \
             re-bless the baseline on this machine class",
            baseline.kernel_path, fresh.kernel_path
        ));
    }
    if baseline.elems != fresh.elems {
        cmp.notes.push(format!(
            "element counts differ (baseline {}, fresh {}); rates are per-element and \
             still compared",
            baseline.elems, fresh.elems
        ));
    }
    let ratios_valid = baseline.parallel_valid && fresh.parallel_valid;
    if !ratios_valid {
        cmp.notes.push(
            "serial/parallel ratio checks skipped (parallel_valid=false on at least one \
             side; 1-CPU machines time-slice the workers)"
                .to_string(),
        );
    }

    // Higher-is-better rate check; `None` when the rate is within tolerance.
    let check_rate = |what: &str, base: f64, now: f64| -> Option<String> {
        (paths_match && now < base * floor).then(|| {
            format!(
                "{what}: {now:.3e} el/s is below baseline {base:.3e} el/s - {:.0}% \
                 (allowed floor {:.3e})",
                tolerance * 100.0,
                base * floor
            )
        })
    };

    for base_kernel in &baseline.kernels {
        let Some(fresh_kernel) = fresh.kernels.iter().find(|k| k.kernel == base_kernel.kernel)
        else {
            cmp.violations
                .push(format!("kernel `{}` missing from the fresh snapshot", base_kernel.kernel));
            continue;
        };
        cmp.violations.extend(check_rate(
            &format!("{} serial", base_kernel.kernel),
            base_kernel.serial_elems_per_sec,
            fresh_kernel.serial_elems_per_sec,
        ));
        cmp.violations.extend(check_rate(
            &format!("{} parallel", base_kernel.kernel),
            base_kernel.parallel_elems_per_sec,
            fresh_kernel.parallel_elems_per_sec,
        ));
        if ratios_valid {
            if let (Some(base_speedup), Some(fresh_speedup)) =
                (base_kernel.speedup, fresh_kernel.speedup)
            {
                if fresh_speedup < base_speedup * floor {
                    cmp.violations.push(format!(
                        "{} speedup: {fresh_speedup:.2}x is below baseline {base_speedup:.2}x \
                         - {:.0}%",
                        base_kernel.kernel,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }

    cmp.violations.extend(check_rate(
        "f16_to_bytes",
        baseline.f16_to_bytes_elems_per_sec,
        fresh.f16_to_bytes_elems_per_sec,
    ));
    cmp.violations.extend(check_rate(
        "f16_from_bytes",
        baseline.f16_from_bytes_elems_per_sec,
        fresh.f16_from_bytes_elems_per_sec,
    ));
    cmp.violations.extend(check_rate(
        "f16_roundtrip",
        baseline.f16_roundtrip_elems_per_sec,
        fresh.f16_roundtrip_elems_per_sec,
    ));

    // Campaign wall-clock: lower is better. The ladder is a millisecond-scale
    // end-to-end run dominated by thread spawns, so it is gated at double the
    // kernel tolerance to absorb scheduler noise. A fault-injected campaign is
    // slower on purpose (retry backoff, derated links), so its wall-clock says
    // nothing about the execution backend and must not fail the gate.
    let faults_injected = baseline.campaign.has_faults() || fresh.campaign.has_faults();
    if faults_injected {
        cmp.notes.push(format!(
            "campaign wall-clock check skipped: fault-injected campaign snapshot \
             (baseline {} fault spec(s), fresh {}) — recovery backoff and link \
             derating are intentional slowdown, not a regression",
            baseline.campaign.fault_specs.unwrap_or(0),
            fresh.campaign.fault_specs.unwrap_or(0)
        ));
    }
    let campaign_ceil = 1.0 + 2.0 * (ceil - 1.0);
    if paths_match
        && !faults_injected
        && fresh.campaign.serial_s > baseline.campaign.serial_s * campaign_ceil
    {
        cmp.violations.push(format!(
            "campaign serial: {:.4} s is above baseline {:.4} s + {:.0}%",
            fresh.campaign.serial_s,
            baseline.campaign.serial_s,
            2.0 * tolerance * 100.0
        ));
    }

    cmp
}

/// Renders the gate outcome as text (notes, then violations, then verdict).
pub fn render_comparison(cmp: &PerfComparison, tolerance: f64) -> String {
    let mut out = format!("Perf gate (tolerance ±{:.0}%)\n", tolerance * 100.0);
    for note in &cmp.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    for violation in &cmp.violations {
        out.push_str(&format!("REGRESSION: {violation}\n"));
    }
    if cmp.passed() {
        out.push_str("PASS: no tracked throughput regressed beyond the tolerance\n");
    } else {
        out.push_str(&format!("FAIL: {} regression(s)\n", cmp.violations.len()));
    }
    out
}

/// Renders the perf snapshot as a text table.
pub fn render_perf(snap: &PerfSnapshot) -> String {
    let mut out = format!(
        "BENCH_2: execution backend throughput ({} elems, {} threads, {} CPUs, {} path)\n",
        snap.elems, snap.threads, snap.num_cpus, snap.kernel_path
    );
    if !snap.parallel_valid {
        out.push_str(
            "NOTE: only 1 CPU visible — parallel ratios are not meaningful and are omitted;\n\
             rerun on a multi-core machine for real speedups.\n",
        );
    }
    out.push_str(&format!(
        "{:<20} {:>16} {:>16} {:>9}  {}\n",
        "kernel", "serial (el/s)", "parallel (el/s)", "speedup", "sweep (el/s @threads)"
    ));
    for k in &snap.kernels {
        let speedup = match k.speedup {
            Some(s) => format!("{s:.2}x"),
            None => "n/a".to_string(),
        };
        let sweep = k
            .per_thread_elems_per_sec
            .iter()
            .map(|p| format!("{:.3e}@{}", p.elems_per_sec, p.threads))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{:<20} {:>16.3e} {:>16.3e} {:>9}  {}\n",
            k.kernel, k.serial_elems_per_sec, k.parallel_elems_per_sec, speedup, sweep
        ));
    }
    out.push_str(&format!(
        "{:<20} {:>16.3e}\n{:<20} {:>16.3e}\n{:<20} {:>16.3e}\n",
        "f16_to_bytes",
        snap.f16_to_bytes_elems_per_sec,
        "f16_from_bytes",
        snap.f16_from_bytes_elems_per_sec,
        "f16_roundtrip",
        snap.f16_roundtrip_elems_per_sec
    ));
    let campaign_speedup = match snap.campaign.speedup {
        Some(s) => format!("{s:.2}x"),
        None => "n/a".to_string(),
    };
    out.push_str(&format!(
        "campaign ladder ({} specs): serial {:.3} s, parallel {:.3} s, speedup {}\n",
        snap.campaign.specs, snap.campaign.serial_s, snap.campaign.parallel_s, campaign_speedup
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_snapshot_quick_mode_produces_positive_rates() {
        let snap = perf_snapshot(true);
        assert_eq!(snap.kernels.len(), 3);
        assert_eq!(snap.parallel_valid, snap.num_cpus > 1);
        assert_eq!(snap.kernel_path, KernelPath::active());
        for k in &snap.kernels {
            assert!(k.serial_elems_per_sec > 0.0, "{}", k.kernel);
            assert!(k.parallel_elems_per_sec > 0.0, "{}", k.kernel);
            assert_eq!(k.kernel_path, KernelPath::active(), "{}", k.kernel);
            // The sweep brackets the headline numbers: first point is the
            // serial rate, last the parallel rate.
            assert_eq!(k.per_thread_elems_per_sec.len(), 3, "{}", k.kernel);
            assert_eq!(k.per_thread_elems_per_sec[0].threads, 1, "{}", k.kernel);
            assert_eq!(
                k.per_thread_elems_per_sec[0].elems_per_sec, k.serial_elems_per_sec,
                "{}",
                k.kernel
            );
            assert_eq!(
                k.per_thread_elems_per_sec.last().unwrap().elems_per_sec,
                k.parallel_elems_per_sec,
                "{}",
                k.kernel
            );
            // The misleading single-CPU ratio is omitted, not recorded.
            assert_eq!(k.speedup.is_some(), snap.parallel_valid, "{}", k.kernel);
            if let Some(s) = k.speedup {
                assert!(s > 0.0, "{}", k.kernel);
            }
        }
        assert!(snap.f16_to_bytes_elems_per_sec > 0.0);
        assert!(snap.f16_from_bytes_elems_per_sec > 0.0);
        assert!(snap.f16_roundtrip_elems_per_sec > 0.0);
        assert!(snap.num_cpus >= 1);
        assert_eq!(snap.campaign.specs, 6);
        assert!(snap.campaign.serial_s > 0.0 && snap.campaign.parallel_s > 0.0);
        assert_eq!(snap.campaign.speedup.is_some(), snap.parallel_valid);
        let rendered = render_perf(&snap);
        assert!(rendered.contains("updater_adam"));
        assert!(rendered.contains("topk_exact_1pct"));
        assert!(rendered.contains("pipelined_step_adam"));
        assert!(rendered.contains("campaign ladder (6 specs)"));
        if !snap.parallel_valid {
            assert!(rendered.contains("only 1 CPU visible"));
            assert!(rendered.contains("n/a"));
        }

        // The snapshot survives its JSON round trip (the gate reads the
        // checked-in baseline back through this path).
        let json = serde_json::to_string_pretty(&snap).expect("serialize snapshot");
        let parsed = PerfSnapshot::from_json(&json).expect("parse snapshot back");
        assert_eq!(parsed.kernel_path, snap.kernel_path);
        assert_eq!(parsed.kernels.len(), snap.kernels.len());
        assert_eq!(parsed.kernels[0].serial_elems_per_sec, snap.kernels[0].serial_elems_per_sec);
        assert_eq!(parsed.kernels[0].per_thread_elems_per_sec.len(), 3);
        assert_eq!(parsed.campaign.serial_s, snap.campaign.serial_s);

        // And a fresh snapshot passes the gate against itself.
        let cmp = compare_perf(&parsed, &snap, 0.15);
        assert!(cmp.passed(), "{:?}", cmp.violations);
    }

    /// A hand-built snapshot so the gate tests are deterministic and cheap —
    /// no measurement involved.
    fn synthetic_snapshot(parallel_valid: bool) -> PerfSnapshot {
        let point = |threads: usize, rate: f64| ThreadPoint { threads, elems_per_sec: rate };
        let kernel = |name: &str, serial: f64, parallel: f64| KernelPerf {
            kernel: name.to_string(),
            kernel_path: KernelPath::Scalar,
            serial_elems_per_sec: serial,
            parallel_elems_per_sec: parallel,
            speedup: parallel_valid.then(|| parallel / serial),
            per_thread_elems_per_sec: vec![
                point(1, serial),
                point(2, (serial + parallel) / 2.0),
                point(4, parallel),
            ],
        };
        PerfSnapshot {
            num_cpus: if parallel_valid { 4 } else { 1 },
            kernel_path: KernelPath::Scalar,
            parallel_valid,
            threads: 4,
            elems: 1 << 20,
            kernels: vec![
                kernel("updater_adam", 8.0e8, 2.4e9),
                kernel("topk_exact_1pct", 3.0e8, 9.0e8),
                kernel("pipelined_step_adam", 8.0e7, 2.4e8),
            ],
            f16_to_bytes_elems_per_sec: 4.0e8,
            f16_from_bytes_elems_per_sec: 1.3e9,
            f16_roundtrip_elems_per_sec: 4.0e8,
            campaign: CampaignPerf {
                specs: 6,
                serial_s: 0.010,
                parallel_s: 0.004,
                speedup: parallel_valid.then_some(2.5),
                fault_specs: Some(0),
            },
        }
    }

    #[test]
    fn perf_gate_passes_an_unchanged_snapshot() {
        let snap = synthetic_snapshot(true);
        let cmp = compare_perf(&snap, &snap, 0.15);
        assert!(cmp.passed(), "{:?}", cmp.violations);
        assert!(render_comparison(&cmp, 0.15).contains("PASS"));
    }

    #[test]
    fn perf_gate_fails_when_a_kernel_slows_down() {
        let baseline = synthetic_snapshot(true);
        // The updater lost a third of its serial throughput — an artificially
        // slowed kernel must fail the gate.
        let mut slowed = baseline.clone();
        slowed.kernels[0].serial_elems_per_sec *= 0.66;
        slowed.kernels[0].per_thread_elems_per_sec[0].elems_per_sec *= 0.66;
        let cmp = compare_perf(&baseline, &slowed, 0.15);
        assert!(!cmp.passed());
        assert!(
            cmp.violations.iter().any(|v| v.contains("updater_adam serial")),
            "{:?}",
            cmp.violations
        );
        assert!(render_comparison(&cmp, 0.15).contains("FAIL"));

        // ...and a 10% dip stays inside the ±15% tolerance.
        let mut wobbled = baseline.clone();
        for k in &mut wobbled.kernels {
            k.serial_elems_per_sec *= 0.9;
            k.parallel_elems_per_sec *= 0.9;
        }
        assert!(compare_perf(&baseline, &wobbled, 0.15).passed());
    }

    #[test]
    fn perf_gate_catches_a_missing_kernel_and_a_slow_campaign() {
        let baseline = synthetic_snapshot(true);
        let mut fresh = baseline.clone();
        fresh.kernels.remove(1);
        fresh.campaign.serial_s = baseline.campaign.serial_s * 1.5;
        let cmp = compare_perf(&baseline, &fresh, 0.15);
        assert!(
            cmp.violations.iter().any(|v| v.contains("topk_exact_1pct")),
            "{:?}",
            cmp.violations
        );
        assert!(
            cmp.violations.iter().any(|v| v.contains("campaign serial")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn perf_gate_skips_fault_campaign_wall_clock_with_a_logged_reason() {
        let baseline = synthetic_snapshot(true);
        // A fault-injected campaign is slower on purpose (retry backoff,
        // derated links): 3x the baseline wall-clock must NOT fail the gate,
        // and the skip must be visible in the notes rather than silent.
        let mut fresh = baseline.clone();
        fresh.campaign.fault_specs = Some(2);
        fresh.campaign.serial_s = baseline.campaign.serial_s * 3.0;
        let cmp = compare_perf(&baseline, &fresh, 0.15);
        assert!(cmp.passed(), "{:?}", cmp.violations);
        assert!(cmp.notes.iter().any(|n| n.contains("fault-injected campaign")), "{:?}", cmp.notes);
        assert!(render_comparison(&cmp, 0.15).contains("fault-injected campaign"));

        // A pre-fault-era baseline (no fault_specs field at all) against a
        // fault-free fresh run still gates the campaign wall-clock.
        let mut old = baseline.clone();
        old.campaign.fault_specs = None;
        let mut slow = baseline.clone();
        slow.campaign.serial_s = baseline.campaign.serial_s * 3.0;
        let cmp = compare_perf(&old, &slow, 0.15);
        assert!(
            cmp.violations.iter().any(|v| v.contains("campaign serial")),
            "{:?}",
            cmp.violations
        );

        // Kernel regressions are still caught even when the campaign check is
        // skipped for faults.
        let mut faulted_and_slow = fresh.clone();
        faulted_and_slow.kernels[0].serial_elems_per_sec *= 0.5;
        let cmp = compare_perf(&baseline, &faulted_and_slow, 0.15);
        assert!(!cmp.passed());

        // The best-rate envelope of a faulted and a clean measurement is
        // still marked faulted.
        let merged = merge_best(&baseline, &fresh);
        assert_eq!(merged.campaign.fault_specs, Some(2));
        assert!(merged.campaign.has_faults());
    }

    #[test]
    fn perf_gate_skips_ratio_checks_on_a_single_cpu_but_still_gates_absolutes() {
        // The 1-CPU container case: speedup ratios are absent and must not be
        // demanded, but an absolute throughput regression is still caught.
        let baseline = synthetic_snapshot(false);
        let cmp = compare_perf(&baseline, &baseline, 0.15);
        assert!(cmp.passed(), "{:?}", cmp.violations);
        assert!(cmp.notes.iter().any(|n| n.contains("ratio checks skipped")), "{:?}", cmp.notes);

        let mut slowed = baseline.clone();
        slowed.f16_roundtrip_elems_per_sec *= 0.5;
        let cmp = compare_perf(&baseline, &slowed, 0.15);
        assert!(cmp.violations.iter().any(|v| v.contains("f16_roundtrip")), "{:?}", cmp.violations);
    }

    #[test]
    fn merge_best_takes_the_fast_side_of_every_measurement() {
        let a = synthetic_snapshot(true);
        let mut b = a.clone();
        // `b` was faster on the updater and the campaign, slower on f16.
        b.kernels[0].serial_elems_per_sec *= 2.0;
        b.kernels[0].per_thread_elems_per_sec[0].elems_per_sec *= 2.0;
        b.f16_to_bytes_elems_per_sec *= 0.5;
        b.campaign.serial_s *= 0.5;
        let merged = merge_best(&a, &b);
        assert_eq!(merged.kernels[0].serial_elems_per_sec, b.kernels[0].serial_elems_per_sec);
        assert_eq!(
            merged.kernels[0].per_thread_elems_per_sec[0].elems_per_sec,
            b.kernels[0].per_thread_elems_per_sec[0].elems_per_sec
        );
        // Speedup is recomputed from the merged rates.
        let k = &merged.kernels[0];
        assert_eq!(k.speedup, Some(k.parallel_elems_per_sec / k.serial_elems_per_sec));
        assert_eq!(merged.f16_to_bytes_elems_per_sec, a.f16_to_bytes_elems_per_sec);
        assert_eq!(merged.campaign.serial_s, b.campaign.serial_s);
        // The envelope of a snapshot with itself is the snapshot.
        let identity = merge_best(&a, &a);
        assert_eq!(identity.kernels[1].serial_elems_per_sec, a.kernels[1].serial_elems_per_sec);
        assert!(compare_perf(&identity, &a, 0.0).passed());
    }

    #[test]
    fn perf_gate_skips_absolute_checks_when_the_kernel_path_differs() {
        // A baseline blessed on an AVX2 box checked against a scalar-only
        // runner: absolute rates are incomparable, so path drift is a note,
        // not a failure.
        let baseline = synthetic_snapshot(true);
        let mut fresh = baseline.clone();
        fresh.kernel_path = KernelPath::Sse2;
        for k in &mut fresh.kernels {
            k.serial_elems_per_sec *= 0.4;
            k.parallel_elems_per_sec *= 0.4;
        }
        let cmp = compare_perf(&baseline, &fresh, 0.15);
        assert!(cmp.passed(), "{:?}", cmp.violations);
        assert!(cmp.notes.iter().any(|n| n.contains("kernel path changed")), "{:?}", cmp.notes);
    }

    #[test]
    fn checked_in_ladder_spec_matches_the_reference_campaign() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/ladder.json");
        let expected = ladder_campaign().to_json_pretty() + "\n";
        if std::env::var_os("BLESS_SPECS").is_some() {
            std::fs::write(path, &expected).expect("write specs/ladder.json");
        }
        let actual = std::fs::read_to_string(path).expect("specs/ladder.json is checked in");
        assert_eq!(actual, expected, "re-run with BLESS_SPECS=1 to regenerate specs/ladder.json");
    }

    #[test]
    fn ladder_campaign_runs_and_renders() {
        let campaign = ladder_campaign();
        assert_eq!(campaign.specs.len(), 6, "ladder + both pipelined points");
        // The checked-in specs/ladder.json is exactly this campaign.
        let parsed = Campaign::from_json(&campaign.to_json_pretty()).expect("round trip");
        assert_eq!(parsed, campaign);
        let report = campaign.run_on(&parcore::ParExecutor::new(4)).expect("campaign run");
        assert_eq!(report.runs.len(), 6);
        assert!((report.runs[0].speedup_over_first - 1.0).abs() < 1e-12);
        assert!(report.runs.iter().skip(1).all(|r| r.speedup_over_first > 1.0));
        let rendered = render_campaign(&report);
        assert!(rendered.contains("SU+O+P+C(2%)"), "{rendered}");
        assert!(rendered.contains("6 specs"), "{rendered}");
    }

    #[test]
    fn fig3_shapes_hold() {
        let rows = fig3a();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.report.update_fraction() > 0.6, "{}: {:?}", r.label, r.report);
        }
        let scaling = fig3b();
        assert_eq!(scaling.len(), 6);
        let last = scaling.last().unwrap();
        let at4 = &scaling[2];
        assert!(last.normalized_speedup < at4.normalized_speedup * 1.15, "RAID0 must saturate");
    }

    #[test]
    fn tab1_matches_the_paper() {
        let rows = tab1();
        assert_eq!(rows[0].opt_read_m, 6.0);
        assert_eq!(rows[1].opt_read_m, 0.0);
        assert!((rows[2].grad_write_m - 0.04).abs() < 1e-9);
    }

    #[test]
    fn tab3_matches_the_paper_within_tolerance() {
        let rows = tab3();
        assert!((rows[0].lut_pct - 33.66).abs() < 1.5);
        assert!((rows[1].uram_pct - 35.94).abs() < 1.5);
    }

    #[test]
    fn fig14_kernels_outpace_the_ssd() {
        for row in fig14() {
            assert!(row.updater_gbps > row.ssd_read_gbps);
            assert!(row.decompress_update_gbps > row.ssd_read_gbps * 0.95);
            assert!(row.ssd_read_gbps > row.ssd_write_gbps);
        }
    }

    #[test]
    fn fig15_crossover_favors_smart_infinity_at_higher_device_counts() {
        let points = fig15();
        let find = |gpu: &str, method: &str, n: usize| {
            points
                .iter()
                .find(|p| p.gpu == gpu && p.method == method && p.num_devices == n)
                .map(|p| p.gflops_per_dollar)
                .expect("point exists")
        };
        // With a single device the plain-SSD baseline is more cost effective...
        assert!(find("A5000", "ZeRO-Inf", 1) > find("A5000", "Smart-Inf", 1));
        // ...but with many devices Smart-Infinity wins (paper Section VII-I).
        assert!(find("A5000", "Smart-Inf", 10) > find("A5000", "ZeRO-Inf", 10));
        assert!(find("A100", "Smart-Inf", 10) > find("A100", "ZeRO-Inf", 10));
    }

    #[test]
    fn fig16_times_decrease_with_stronger_compression() {
        let points = fig16();
        let gpt_10: Vec<&CompressionSensitivityPoint> =
            points.iter().filter(|p| p.model == "GPT2-4.0B" && p.num_devices == 10).collect();
        let su_o = gpt_10.iter().find(|p| p.setting == "SU+O").unwrap().total_s;
        let one_pct = gpt_10.iter().find(|p| p.setting == "1%").unwrap().total_s;
        assert!(one_pct < su_o);
    }

    #[test]
    fn pipeline_overlap_rows_show_overlap_and_speedup() {
        let rows = pipeline_overlap();
        assert_eq!(rows.len(), 6);
        for chunk in rows.chunks(3) {
            let (serial, pipe, pipe_c) = (&chunk[0], &chunk[1], &chunk[2]);
            assert_eq!(serial.update_overlap_s, 0.0, "{}", serial.label);
            assert!((serial.speedup_over_serial - 1.0).abs() < 1e-9);
            assert!(pipe.update_overlap_s > 0.0, "{}", pipe.label);
            assert!(pipe.speedup_over_serial >= 1.0, "{}", pipe.label);
            assert!(pipe_c.report.total_s() < pipe.report.total_s(), "{}", pipe_c.label);
            for row in chunk {
                assert!(row.uplink_write_busy_s > 0.0);
                assert!(row.uplink_readback_busy_s > 0.0);
            }
        }
        assert!(render_pipeline(&rows).contains("SU+O+P"));
    }

    #[test]
    fn fig17_congested_topology_still_speeds_up() {
        let rows = fig17();
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            assert!(pair[1].speedup > 1.2, "{}: {:.2}", pair[1].label, pair[1].speedup);
        }
    }
}
