//! Regenerates every table and figure of the Smart-Infinity evaluation, and
//! runs spec-driven campaigns.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- all
//! cargo run -p bench --release --bin figures -- fig9 fig11 tab4
//! cargo run -p bench --release --bin figures -- --json results/ all
//! cargo run -p bench --release --bin figures -- campaign specs/ladder.json
//! cargo run -p bench --release --bin figures -- --check campaign specs/*.json
//! cargo run -p bench --release --bin figures -- --checkpoint ckpt.json --halt-after 2 campaign specs/faults.json
//! cargo run -p bench --release --bin figures -- sched specs/ladder.json
//! cargo run -p bench --release --bin figures -- serve specs/serve.json --clients 3
//! cargo run -p bench --release --bin figures -- --clients 2 --passes 2 --expect-dedup serve specs/ladder.json
//! cargo run -p bench --release --bin figures -- perf --check BENCH_2.json --tolerance 0.15
//! cargo run -p bench --release --bin figures -- perf --bless --check BENCH_2.json
//! ```
//!
//! Each experiment prints a text table; with `--json DIR` the raw data is also
//! written as one JSON file per experiment (used to fill in EXPERIMENTS.md).
//! `campaign` loads each given `*.json` spec file, runs every spec in it
//! concurrently on `parcore` workers and prints the per-spec breakdown;
//! `--check` only parses and validates the files (the CI guard for the
//! checked-in `specs/`). With `--checkpoint <path>` the campaign becomes
//! resumable: an existing checkpoint file is loaded and its completed runs
//! are reused verbatim, and `--halt-after N` stops after N fresh runs and
//! writes the checkpoint back — killing and re-invoking the same command
//! finishes the campaign with bit-identical results to an uninterrupted run.
//! A completed campaign deletes its checkpoint file.
//!
//! `sched` loads the same spec files and runs every spec's model / machine /
//! workload under *each* of the four method schedulers (`host-update`,
//! `serial-naive`, `serial-overlap`, `pipelined`), printing the per-phase
//! breakdown and the speedup over the host-update baseline — the ladder as a
//! scheduler comparison rather than a method sweep.
//!
//! `serve` drives the same spec files through the `campaignd` service
//! instead: `--clients N` simulated clients each submit the full list
//! `--passes P` times against one `CampaignService`, and the report shows
//! per-pass cache-hit rates, the executions-vs-unique-specs dedup proof,
//! per-client fairness and queue-wait/run-time latency distributions.
//! `--expect-dedup` turns the run into a gate (the CI smoke): exactly one
//! execution per unique spec, 100% cache hits on every pass after the first,
//! and no starved client.
//!
//! For the `perf` experiment, `--check <baseline.json>` (the argument must end
//! in `.json`) turns the run into a regression gate: the fresh snapshot is
//! compared against the checked-in baseline and the process exits non-zero if
//! any tracked throughput regressed beyond `--tolerance` (default ±15%).
//! `--bless` instead overwrites the baseline file with the fresh snapshot —
//! the re-blessing path after an intentional perf change.

use bench::harness;
use serde::Serialize;
use smart_infinity::{Campaign, CampaignCheckpoint, CampaignProgress};
use std::path::{Path, PathBuf};

const ALL: &[&str] = &[
    "fig3a", "fig3b", "tab1", "tab3", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "tab4", "fig16", "fig17", "pipeline", "perf",
];

/// The one authoritative usage table: every subcommand, every experiment id,
/// every flag. Printed to stdout on `--help` and to stderr (before a non-zero
/// exit) on any argument error.
fn usage() -> String {
    format!(
        "usage: figures [--json DIR] [--quick] <all | experiment id ...>\n\
         \x20      figures [--json DIR] [--check] [--checkpoint CKPT.json [--halt-after N]] \
         campaign <spec.json> [spec.json ...]\n\
         \x20      figures [--json DIR] sched <spec.json> [spec.json ...]\n\
         \x20      figures [--json DIR] [--clients N] [--passes N] [--queue-depth N] \
         [--admission-batch N] [--expect-dedup] serve <spec.json> [spec.json ...]\n\
         \x20      figures [--quick] perf [--check <baseline.json>] [--tolerance 0.15] [--bless]\n\
         \n\
         subcommands:\n\
         \x20 campaign    run every spec of each campaign file concurrently\n\
         \x20             (--check validates only; --checkpoint makes the run resumable)\n\
         \x20 sched       run each spec under all four method schedulers and compare\n\
         \x20 serve       drive spec files through the campaignd service and report\n\
         \x20             dedup, cache-hit rate, queue depth and latency distributions\n\
         \x20 perf        microbenchmark snapshot; with --check it is a regression gate\n\
         \x20 all         every experiment id below\n\
         \n\
         experiment ids:\n\
         \x20 {}\n\
         \n\
         flags:\n\
         \x20 --json DIR            also write each experiment's raw data as JSON\n\
         \x20 --quick               smaller sweeps for smoke runs\n\
         \x20 --check               campaign: parse + validate spec files only\n\
         \x20 --check FILE.json     perf: compare against the checked-in baseline\n\
         \x20 --tolerance F         perf gate tolerance (default 0.15)\n\
         \x20 --bless               perf: overwrite the baseline with a fresh snapshot\n\
         \x20 --checkpoint FILE     campaign: load/store resumable progress\n\
         \x20 --halt-after N        campaign: stop after N fresh runs (needs --checkpoint)\n\
         \x20 --clients N           serve: number of simulated clients\n\
         \x20 --passes N            serve: submissions of the full spec list per client\n\
         \x20 --queue-depth N       serve: service queue depth\n\
         \x20 --admission-batch N   serve: admissions per drain step\n\
         \x20 --expect-dedup        serve: turn the run into a dedup/cache gate\n\
         \x20 --help, -h            print this table",
        ALL.join(" ")
    )
}

/// Prints `message` and the usage table to stderr, then exits with status 2.
fn usage_error(message: &str) -> ! {
    eprintln!("figures: {message}\n{}", usage());
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_dir: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut campaign_paths: Vec<String> = Vec::new();
    let mut campaign_mode = false;
    let mut serve_paths: Vec<String> = Vec::new();
    let mut serve_mode = false;
    let mut sched_paths: Vec<String> = Vec::new();
    let mut sched_mode = false;
    let mut serve = harness::ServeOpts::default();
    let mut expect_dedup = false;
    let mut quick = false;
    let mut check = false;
    let mut checkpoint: Option<PathBuf> = None;
    let mut halt_after: Option<usize> = None;
    let mut gate = PerfGateOpts::default();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            "--checkpoint" => {
                let path = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--checkpoint requires a file argument"));
                checkpoint = Some(PathBuf::from(path));
            }
            "--halt-after" => {
                let n = iter.next().and_then(|t| t.parse::<usize>().ok()).unwrap_or_else(|| {
                    usage_error("--halt-after requires a positive integer argument")
                });
                halt_after = Some(n);
            }
            "--json" => {
                let dir = iter
                    .next()
                    .unwrap_or_else(|| usage_error("--json requires a directory argument"));
                json_dir = Some(PathBuf::from(dir));
            }
            "--quick" => quick = true,
            // `--check <baseline.json>` is the perf regression gate;
            // a bare `--check` (next token is `campaign` or an experiment id)
            // keeps its validate-only meaning for campaign spec files.
            "--check" => match iter.peek() {
                Some(next) if next.ends_with(".json") && !campaign_mode => {
                    gate.baseline = Some(PathBuf::from(iter.next().expect("peeked")));
                }
                _ => check = true,
            },
            "--tolerance" => {
                let value = iter.next().and_then(|t| t.parse::<f64>().ok()).unwrap_or_else(|| {
                    usage_error("--tolerance requires a fractional argument, e.g. 0.15")
                });
                gate.tolerance = value;
            }
            "--bless" => gate.bless = true,
            "campaign" => {
                campaign_mode = true;
                serve_mode = false;
                sched_mode = false;
            }
            "serve" => {
                serve_mode = true;
                campaign_mode = false;
                sched_mode = false;
            }
            "sched" => {
                sched_mode = true;
                campaign_mode = false;
                serve_mode = false;
            }
            "--clients" => serve.clients = required_usize(&mut iter, "--clients"),
            "--passes" => serve.passes = required_usize(&mut iter, "--passes"),
            "--queue-depth" => serve.queue_depth = required_usize(&mut iter, "--queue-depth"),
            "--admission-batch" => {
                serve.admission_batch = required_usize(&mut iter, "--admission-batch");
            }
            "--expect-dedup" => expect_dedup = true,
            "all" => selected.extend(ALL.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => {
                usage_error(&format!("unknown option `{other}`"));
            }
            other if campaign_mode => campaign_paths.push(other.to_string()),
            other if serve_mode => serve_paths.push(other.to_string()),
            other if sched_mode => sched_paths.push(other.to_string()),
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty()
        && campaign_paths.is_empty()
        && serve_paths.is_empty()
        && sched_paths.is_empty()
    {
        usage_error("no experiment, campaign, sched or serve argument given");
    }
    // Reject unknown experiment ids up front, before any experiment runs:
    // a typo in the middle of `figures fig9 fg11 tab4` must not burn time on
    // fig9 first and then die halfway through.
    if let Some(bad) = selected.iter().find(|id| !ALL.contains(&id.as_str())) {
        usage_error(&format!("unknown experiment id `{bad}`"));
    }
    if halt_after.is_some() && checkpoint.is_none() {
        usage_error("--halt-after needs --checkpoint <path> to store the partial progress");
    }
    if checkpoint.is_some() && campaign_paths.len() != 1 {
        usage_error("--checkpoint tracks exactly one campaign spec file");
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json output directory");
    }
    for id in selected {
        run_one(&id, quick, json_dir.as_deref(), &gate);
    }
    for path in campaign_paths {
        run_campaign(
            Path::new(&path),
            check,
            json_dir.as_deref(),
            checkpoint.as_deref(),
            halt_after,
        );
    }
    for path in serve_paths {
        run_serve(Path::new(&path), &serve, expect_dedup, json_dir.as_deref());
    }
    for path in sched_paths {
        run_sched(Path::new(&path), json_dir.as_deref());
    }
}

/// One spec's scheduler comparison, as written by `--json`.
#[derive(Serialize)]
struct SchedOutput {
    /// The spec's display label.
    spec: String,
    /// One row per method scheduler.
    rows: Vec<smart_infinity::sched::SchedulerRun>,
}

/// Runs every spec of the given file (a campaign file or a single run spec)
/// under each of the four method schedulers and prints the per-phase
/// comparison with speedups over the `host-update` baseline.
fn run_sched(path: &Path, json: Option<&Path>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    // Accept both a campaign file and a bare run spec.
    let specs = match Campaign::from_json(&text) {
        Ok(campaign) => campaign.specs,
        Err(_) => vec![smart_infinity::RunSpec::from_json(&text).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        })],
    };
    let mut outputs = Vec::with_capacity(specs.len());
    for spec in &specs {
        let rows = smart_infinity::sched::compare_schedulers(spec).unwrap_or_else(|e| {
            eprintln!("{} [{}]: {e}", path.display(), spec.label());
            std::process::exit(1);
        });
        let baseline_total = rows
            .iter()
            .find(|r| r.scheduler == "host-update")
            .map(|r| r.report.total_s())
            .unwrap_or(f64::NAN);
        println!("{} — scheduler comparison", spec.label());
        println!(
            "{:<16} {:<13} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "scheduler", "method", "fw (s)", "bw (s)", "up (s)", "total", "speedup"
        );
        for row in &rows {
            println!(
                "{:<16} {:<13} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8.2}x",
                row.scheduler,
                row.method,
                row.report.forward_s,
                row.report.backward_s,
                row.report.update_s,
                row.report.total_s(),
                baseline_total / row.report.total_s()
            );
        }
        println!();
        outputs.push(SchedOutput { spec: spec.label(), rows });
    }
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("sched");
    write_json(json, &format!("sched_{stem}"), &outputs);
}

/// Consumes the next token as a positive integer or exits with usage help.
fn required_usize(iter: &mut std::iter::Peekable<std::vec::IntoIter<String>>, flag: &str) -> usize {
    iter.next().and_then(|t| t.parse::<usize>().ok()).filter(|&n| n > 0).unwrap_or_else(|| {
        eprintln!("{flag} requires a positive integer argument");
        std::process::exit(2);
    })
}

/// Drives one spec file through the `campaignd` service with N simulated
/// clients ([`harness::serve_campaign`]) and renders hit rates, fairness and
/// latency. With `--expect-dedup` the run becomes a gate: exactly one
/// execution per unique spec, 100% cache hits on every pass after the first,
/// and no starved client — or the process exits non-zero.
fn run_serve(path: &Path, opts: &harness::ServeOpts, expect_dedup: bool, json: Option<&Path>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    let campaign = Campaign::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", path.display());
        std::process::exit(1);
    });
    let outcome = harness::serve_campaign(&campaign, opts, &parcore::ParExecutor::current())
        .unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        });
    println!("{}", harness::render_serve(&outcome));
    if expect_dedup {
        let mut failures: Vec<String> = Vec::new();
        if outcome.executions != outcome.unique_specs as u64 {
            failures.push(format!(
                "{} execution(s) for {} unique spec(s): dedup did not hold",
                outcome.executions, outcome.unique_specs
            ));
        }
        for pass in outcome.passes.iter().skip(1) {
            if pass.cache_hits != pass.submitted {
                failures.push(format!(
                    "pass {}: only {} of {} submissions were cache hits",
                    pass.pass, pass.cache_hits, pass.submitted
                ));
            }
        }
        let per_client = (outcome.specs_per_pass * outcome.passes.len()) as u64;
        for (client, stats) in outcome.report.clients.iter().enumerate() {
            if stats.completed != per_client {
                failures.push(format!(
                    "client {client} completed {} of {per_client} job(s): starved",
                    stats.completed
                ));
            }
        }
        if !failures.is_empty() {
            for failure in &failures {
                eprintln!("serve gate: {failure}");
            }
            std::process::exit(1);
        }
        println!(
            "serve gate OK: {} unique spec(s) executed once each, every later pass 100% \
             cached, all {} client(s) completed {per_client} job(s)",
            outcome.unique_specs, outcome.clients
        );
    }
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("serve");
    write_json(json, &format!("serve_{stem}"), &outcome);
}

/// Options for the `perf` regression gate (`--check/--tolerance/--bless`).
struct PerfGateOpts {
    /// Baseline snapshot to gate against (`--check <baseline.json>`).
    baseline: Option<PathBuf>,
    /// Allowed fractional regression before the gate fails (`--tolerance`).
    tolerance: f64,
    /// Overwrite the baseline with the fresh snapshot instead of gating.
    bless: bool,
}

impl Default for PerfGateOpts {
    fn default() -> Self {
        Self { baseline: None, tolerance: 0.15, bless: false }
    }
}

fn run_campaign(
    path: &Path,
    check: bool,
    json: Option<&Path>,
    checkpoint: Option<&Path>,
    halt_after: Option<usize>,
) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    let campaign = Campaign::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", path.display());
        std::process::exit(1);
    });
    if check {
        if let Err(e) = campaign.validate() {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        }
        println!("OK {} ({} specs)", path.display(), campaign.specs.len());
        return;
    }
    // An existing checkpoint file holds the completed leading runs of an
    // earlier (halted or killed) invocation of the same campaign; resume it.
    let resume_from = checkpoint.filter(|p| p.exists()).map(|p| {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read checkpoint {}: {e}", p.display());
            std::process::exit(2);
        });
        let ckpt: CampaignCheckpoint = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("invalid campaign checkpoint {}: {e}", p.display());
            std::process::exit(2);
        });
        println!("resuming from {} ({} completed run(s))", p.display(), ckpt.completed.len());
        ckpt
    });
    let progress = campaign
        .run_resumable(&parcore::ParExecutor::current(), resume_from, halt_after)
        .unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(1);
        });
    let report = match progress {
        CampaignProgress::Complete(report) => {
            if let Some(ckpt_path) = checkpoint.filter(|p| p.exists()) {
                // The checkpoint is consumed: the campaign is complete.
                let _ = std::fs::remove_file(ckpt_path);
            }
            report
        }
        CampaignProgress::Halted(ckpt) => {
            let ckpt_path = checkpoint.expect("--halt-after requires --checkpoint");
            let pretty = serde_json::to_string_pretty(&ckpt).expect("serialise checkpoint");
            std::fs::write(ckpt_path, pretty).unwrap_or_else(|e| {
                eprintln!("cannot write checkpoint {}: {e}", ckpt_path.display());
                std::process::exit(2);
            });
            println!(
                "halted after {} of {} run(s); checkpoint written to {} — re-invoke the same \
                 command to resume",
                ckpt.completed.len(),
                campaign.specs.len(),
                ckpt_path.display()
            );
            return;
        }
    };
    println!("{}", harness::render_campaign(&report));
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("campaign");
    write_json(json, &format!("campaign_{stem}"), &report);
}

fn write_json<T: Serialize>(dir: Option<&std::path::Path>, id: &str, value: &T) {
    if let Some(dir) = dir {
        let path = dir.join(format!("{id}.json"));
        let json = serde_json::to_string_pretty(value).expect("serialise result");
        std::fs::write(&path, json).expect("write json result");
    }
}

fn run_one(id: &str, quick: bool, json: Option<&std::path::Path>, gate: &PerfGateOpts) {
    match id {
        "fig3a" => {
            let rows = harness::fig3a();
            println!(
                "{}",
                harness::render_breakdown(
                    "Figure 3(a): baseline breakdown, 1 SSD (update dominates)",
                    &rows
                )
            );
            write_json(json, id, &rows);
        }
        "fig3b" => {
            let points = harness::fig3b();
            println!("Figure 3(b): RAID0 normalised speedup (GPT-2 4.0B)");
            println!("{:>6} {:>10} {:>10}", "#SSDs", "time (s)", "speedup");
            for p in &points {
                println!("{:>6} {:>10.2} {:>9.2}x", p.num_devices, p.total_s, p.normalized_speedup);
            }
            println!();
            write_json(json, id, &points);
        }
        "tab1" => {
            let rows = harness::tab1();
            println!("Table I: system-interconnect traffic per iteration (in M units)");
            println!(
                "{:<16} {:>9} {:>9} {:>10} {:>10} {:>9}",
                "method", "opt read", "opt write", "grad read", "grad write", "param up"
            );
            for r in &rows {
                println!(
                    "{:<16} {:>8.2}M {:>8.2}M {:>9.2}M {:>9.2}M {:>8.2}M",
                    r.method,
                    r.opt_read_m,
                    r.opt_write_m,
                    r.grad_read_m,
                    r.grad_write_m,
                    r.param_up_m
                );
            }
            println!();
            write_json(json, id, &rows);
        }
        "tab3" => {
            let rows = harness::tab3();
            println!("Table III: FPGA resource utilisation (KU15P)");
            println!("{:<16} {:>8} {:>8} {:>8} {:>8}", "module", "LUT%", "BRAM%", "URAM%", "DSP%");
            for r in &rows {
                println!(
                    "{:<16} {:>7.2} {:>8.2} {:>8.2} {:>8.2}",
                    r.module, r.lut_pct, r.bram_pct, r.uram_pct, r.dsp_pct
                );
            }
            println!();
            write_json(json, id, &rows);
        }
        "fig9" => {
            let rows = harness::fig9();
            println!(
                "{}",
                harness::render_breakdown(
                    "Figure 9: ablation ladder (GPT-2 / BERT, 6 & 10 SSDs)",
                    &rows
                )
            );
            write_json(json, id, &rows);
        }
        "fig10" => {
            let rows = harness::fig10();
            println!(
                "{}",
                harness::render_breakdown("Figure 10: larger models (16.6B - 33.0B)", &rows)
            );
            write_json(json, id, &rows);
        }
        "fig11" => {
            let points = harness::fig11a();
            println!("Figure 11(a): scalability with #CSDs (normalised to 1-SSD baseline)");
            println!("{:<8} {:<12} {:>6} {:>10}", "GPU", "method", "#SSDs", "speedup");
            for p in &points {
                println!(
                    "{:<8} {:<12} {:>6} {:>9.2}x",
                    p.gpu, p.method, p.num_devices, p.normalized_speedup
                );
            }
            println!();
            let rows = harness::fig11b();
            println!("{}", harness::render_breakdown("Figure 11(b): breakdown at 10 SSDs", &rows));
            write_json(json, "fig11a", &points);
            write_json(json, "fig11b", &rows);
        }
        "fig12" => {
            let rows = harness::fig12();
            println!(
                "{}",
                harness::render_breakdown("Figure 12: other optimizers (SGD, AdaGrad)", &rows)
            );
            write_json(json, id, &rows);
        }
        "fig13" => {
            let rows = harness::fig13();
            println!("{}", harness::render_breakdown("Figure 13: BLOOM and ViT", &rows));
            write_json(json, id, &rows);
        }
        "fig14" => {
            let rows = harness::fig14();
            println!("Figure 14: kernel throughput vs SSD bandwidth (GB/s)");
            println!(
                "{:<12} {:>9} {:>14} {:>9} {:>9}",
                "model", "updater", "decomp+update", "SSD read", "SSD write"
            );
            for r in &rows {
                println!(
                    "{:<12} {:>9.2} {:>14.2} {:>9.2} {:>9.2}",
                    r.model,
                    r.updater_gbps,
                    r.decompress_update_gbps,
                    r.ssd_read_gbps,
                    r.ssd_write_gbps
                );
            }
            println!();
            write_json(json, id, &rows);
        }
        "fig15" => {
            let points = harness::fig15();
            println!("Figure 15: cost efficiency (GFLOPS/$), GPT-2 4.0B");
            println!("{:<8} {:<10} {:>6} {:>12}", "GPU", "method", "#SSDs", "GFLOPS/$");
            for p in &points {
                println!(
                    "{:<8} {:<10} {:>6} {:>12.4}",
                    p.gpu, p.method, p.num_devices, p.gflops_per_dollar
                );
            }
            println!();
            write_json(json, id, &points);
        }
        "tab4" => {
            let epochs = if quick { 1 } else { 3 };
            let rows = harness::tab4(epochs);
            println!("Table IV: fine-tuning accuracy (GLUE-like suite) and speedup (#SSDs=6)");
            println!(
                "{:<12} {:<16} {:>8} {:>10} {:>9} {:>10} {:>10}",
                "model", "method", "speedup", "MNLI-like", "QQP-like", "SST2-like", "QNLI-like"
            );
            for r in &rows {
                println!(
                    "{:<12} {:<16} {:>7.2}x {:>9.2} {:>9.2} {:>10.2} {:>10.2}",
                    r.model,
                    r.method,
                    r.speedup,
                    r.accuracies_pct[0],
                    r.accuracies_pct[1],
                    r.accuracies_pct[2],
                    r.accuracies_pct[3]
                );
            }
            println!();
            write_json(json, id, &rows);
        }
        "fig16" => {
            let points = harness::fig16();
            println!("Figure 16: iteration-time sensitivity to compression ratio");
            println!("{:<12} {:>6} {:<8} {:>10}", "model", "#SSDs", "ratio", "time (s)");
            for p in &points {
                println!(
                    "{:<12} {:>6} {:<8} {:>10.2}",
                    p.model, p.num_devices, p.setting, p.total_s
                );
            }
            println!();
            write_json(json, id, &points);
        }
        "fig17" => {
            let rows = harness::fig17();
            println!(
                "{}",
                harness::render_breakdown(
                    "Figure 17: congested multi-GPU topology (GPT-2 1.16B, 10 CSDs)",
                    &rows
                )
            );
            write_json(json, id, &rows);
        }
        "pipeline" => {
            let rows = harness::pipeline_overlap();
            println!("{}", harness::render_pipeline(&rows));
            write_json(json, id, &rows);
        }
        "perf" => {
            let mut snap = harness::perf_snapshot(quick);
            println!("{}", harness::render_perf(&snap));
            if gate.bless {
                // The baseline should record the machine's capability, not
                // whichever scheduler window one run happened to land in, so
                // blessing takes the best-rate envelope over three runs —
                // the same estimator the gate's noise-retry uses.
                for _ in 0..2 {
                    snap = harness::merge_best(&snap, &harness::perf_snapshot(quick));
                }
                let target = gate.baseline.clone().unwrap_or_else(|| PathBuf::from("BENCH_2.json"));
                let pretty = serde_json::to_string_pretty(&snap).expect("serialise snapshot");
                std::fs::write(&target, pretty).unwrap_or_else(|e| {
                    eprintln!("cannot write {}: {e}", target.display());
                    std::process::exit(2);
                });
                println!("blessed {} with the best-of-3 snapshot envelope", target.display());
            } else if let Some(baseline_path) = &gate.baseline {
                let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
                    eprintln!("cannot read {}: {e}", baseline_path.display());
                    std::process::exit(2);
                });
                let baseline = harness::PerfSnapshot::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("{}: {e}", baseline_path.display());
                    std::process::exit(2);
                });
                let mut cmp = harness::compare_perf(&baseline, &snap, gate.tolerance);
                // A real regression fails every attempt; a noisy co-tenant
                // window only subtracts throughput from one. Re-measure and
                // fold into the envelope before declaring failure.
                for attempt in 2..=3 {
                    if cmp.passed() {
                        break;
                    }
                    println!(
                        "gate failed; re-measuring to rule out scheduler noise \
                         (attempt {attempt}/3)"
                    );
                    snap = harness::merge_best(&snap, &harness::perf_snapshot(quick));
                    cmp = harness::compare_perf(&baseline, &snap, gate.tolerance);
                }
                print!("{}", harness::render_comparison(&cmp, gate.tolerance));
                if !cmp.passed() {
                    std::process::exit(1);
                }
            }
            // The perf snapshot (post-merge envelope, when gating or
            // blessing) is the tracked baseline trajectory: BENCH_2.json.
            write_json(json, "BENCH_2", &snap);
        }
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    }
}
