pub mod harness;
