//! Microbenchmarks of the functional kernels: the FPGA updater arithmetic,
//! the Top-K compressor/decompressor, half-precision conversion and the
//! discrete-event engine itself. These measure the *real* Rust implementations
//! (the functional layer), complementing the modelled throughputs of Fig. 14.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gradcomp::Compressor;
use optim::{HyperParams, Optimizer, OptimizerKind};
use parcore::ParExecutor;
use simkit::{FlowSpec, Simulation};
use std::hint::black_box;
use tensorlib::{Dtype, FlatTensor};

const KERNEL_ELEMS: usize = 1 << 20;

fn bench_updater_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("updater_kernels");
    g.throughput(Throughput::Bytes((KERNEL_ELEMS * 16) as u64));
    let grads = FlatTensor::randn(KERNEL_ELEMS, 0.01, 1);
    for kind in [
        OptimizerKind::Adam,
        OptimizerKind::AdamW,
        OptimizerKind::SgdMomentum,
        OptimizerKind::AdaGrad,
    ] {
        let optimizer = Optimizer::new(kind, HyperParams::default());
        g.bench_with_input(BenchmarkId::new("step", format!("{kind:?}")), &kind, |b, _| {
            let mut params = FlatTensor::randn(KERNEL_ELEMS, 0.02, 2);
            let mut aux = optimizer.init_aux(KERNEL_ELEMS);
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                optimizer.step(params.as_mut_slice(), &grads, &mut aux, t);
                black_box(params.as_slice()[0]);
            });
        });
    }
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("gradient_compression");
    g.throughput(Throughput::Bytes((KERNEL_ELEMS * 4) as u64));
    let grads = FlatTensor::randn(KERNEL_ELEMS, 0.01, 3);
    for keep in [0.01f64, 0.05] {
        g.bench_with_input(BenchmarkId::new("topk_exact", keep), &keep, |b, &keep| {
            let compressor = Compressor::top_k(keep);
            b.iter(|| black_box(compressor.compress(&grads)));
        });
        g.bench_with_input(BenchmarkId::new("topk_threshold", keep), &keep, |b, &keep| {
            let compressor = Compressor::threshold_top_k(keep, 4096);
            b.iter(|| black_box(compressor.compress(&grads)));
        });
    }
    let compressed = Compressor::top_k(0.01).compress(&grads);
    let decompressor = csd::Decompressor::default();
    g.bench_function("fpga_decompressor", |b| {
        let mut out = vec![0.0f32; KERNEL_ELEMS];
        b.iter(|| {
            decompressor.decompress_into(&compressed, &mut out);
            black_box(out[0]);
        });
    });
    g.finish();
}

/// Serial vs parallel execution backend on 1M-element tensors: the Adam
/// updater and the exact Top-K selection at 1, 2 and 4 worker threads.
/// (Results are bit-identical across thread counts — asserted by the test
/// suites — so these benches measure wall-clock only. Speedup is bounded by
/// the CPUs actually available to the process.)
fn bench_parallel_backend(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_backend");
    g.throughput(Throughput::Elements(KERNEL_ELEMS as u64));
    let grads = FlatTensor::randn(KERNEL_ELEMS, 0.01, 7);
    let optimizer = Optimizer::adam_default();
    for threads in [1usize, 2, 4] {
        let pool = ParExecutor::new(threads);
        g.bench_with_input(BenchmarkId::new("adam_step", threads), &threads, |b, _| {
            let mut params = FlatTensor::randn(KERNEL_ELEMS, 0.02, 8);
            let mut aux = optimizer.init_aux(KERNEL_ELEMS);
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                optimizer.par_step(&pool, params.as_mut_slice(), &grads, &mut aux, t);
                black_box(params.as_slice()[0]);
            });
        });
        g.bench_with_input(BenchmarkId::new("topk_exact_1pct", threads), &threads, |b, _| {
            let compressor = Compressor::top_k(0.01);
            b.iter(|| black_box(compressor.compress_par(&grads, &pool)));
        });
    }
    g.finish();
}

fn bench_half_precision(c: &mut Criterion) {
    let mut g = c.benchmark_group("half_precision");
    let t = FlatTensor::randn(KERNEL_ELEMS, 1.0, 4);
    g.throughput(Throughput::Bytes((KERNEL_ELEMS * 4) as u64));
    g.bench_function("f32_to_f16_bytes", |b| b.iter(|| black_box(t.to_bytes(Dtype::F16))));
    let bytes = t.to_bytes(Dtype::F16);
    g.bench_function("f16_bytes_to_f32", |b| {
        b.iter(|| black_box(FlatTensor::from_bytes(&bytes, Dtype::F16)))
    });
    g.finish();
}

fn bench_simulation_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("discrete_event_engine");
    g.bench_function("thousand_contending_flows", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let shared = sim.add_link("shared", 16e9);
            let mut prev = None;
            for i in 0..1000usize {
                let dev = sim.add_link(format!("dev{}", i % 10), 3e9);
                let mut spec = FlowSpec::new(vec![shared, dev], 1e8);
                if let Some(p) = prev {
                    if i % 3 == 0 {
                        spec = spec.after(&[p]);
                    }
                }
                prev = Some(sim.flow(spec));
            }
            black_box(sim.run().expect("simulation").makespan())
        });
    });
    g.finish();
}

fn bench_functional_trainers(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_trainers");
    let n = 200_000;
    let initial = FlatTensor::randn(n, 0.02, 5);
    let grads = FlatTensor::randn(n, 0.01, 6);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("baseline_storage_offload_step", |b| {
        let mut trainer =
            ztrain::StorageOffloadTrainer::new(&initial, Optimizer::adam_default(), 4, 50_000)
                .expect("trainer");
        b.iter(|| trainer.train_step_with_grads(&grads).expect("step"));
    });
    g.bench_function("smart_infinity_step", |b| {
        let mut trainer = smart_infinity::SmartInfinityTrainer::new(
            &initial,
            Optimizer::adam_default(),
            4,
            50_000,
        )
        .expect("trainer");
        b.iter(|| trainer.train_step_with_grads(&grads).expect("step"));
    });
    g.bench_function("smart_infinity_compressed_step", |b| {
        let mut trainer = smart_infinity::SmartInfinityTrainer::new(
            &initial,
            Optimizer::adam_default(),
            4,
            50_000,
        )
        .expect("trainer")
        .with_compression(0.01);
        b.iter(|| trainer.train_step_with_grads(&grads).expect("step"));
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_updater_kernels,
    bench_compression,
    bench_parallel_backend,
    bench_half_precision,
    bench_simulation_engine,
    bench_functional_trainers
);
criterion_main!(kernels);
