//! Benchmarks of the pipelined fabric execution backend: one full functional
//! training step, serial vs pipelined across worker-thread counts, with and
//! without SmartComp compression. The results are bit-identical by
//! construction (the integration suite asserts it); these measure the
//! wall-clock effect of overlapping the per-device write → compress/update →
//! read-back stages.
//!
//! NOTE: on a single-CPU container the pipelined lanes time-slice one core,
//! so the ratios here are only meaningful on a multi-core machine (the same
//! caveat BENCH_2.json records via `parallel_valid`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use optim::Optimizer;
use std::hint::black_box;
use tensorlib::FlatTensor;
use ztrain::PipelinedTrainer;

const STEP_ELEMS: usize = 1 << 18;
const DEVICES: usize = 4;

fn bench_pipelined_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelined_step");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((STEP_ELEMS * 4) as u64));
    let initial = FlatTensor::randn(STEP_ELEMS, 0.02, 1);
    let grads = FlatTensor::randn(STEP_ELEMS, 0.01, 2);
    for keep in [None, Some(0.01f64)] {
        let label = keep.map_or("dense".to_string(), |k| format!("topk{k}"));
        for threads in [1usize, 2, 4] {
            g.bench_with_input(BenchmarkId::new(&label, threads), &threads, |b, &threads| {
                let mut trainer = PipelinedTrainer::new(
                    &initial,
                    Optimizer::adam_default(),
                    DEVICES,
                    STEP_ELEMS / DEVICES,
                )
                .expect("trainer");
                if let Some(k) = keep {
                    trainer = trainer.with_compression(k).expect("keep ratio");
                }
                trainer = trainer.with_threads(threads);
                b.iter(|| {
                    let report = trainer.train_step_with_grads(&grads).expect("step");
                    black_box(report.stages);
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pipelined_step);
criterion_main!(benches);
