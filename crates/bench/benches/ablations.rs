//! Ablation benchmarks beyond the paper's figures: design-choice studies
//! called out in DESIGN.md — handler mode across subgroup sizes, compression
//! selection strategy, partition granularity, and the FW/BW block streaming
//! pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm::{ModelConfig, Workload};
use optim::OptimizerKind;
use smart_infinity::{HandlerMode, SmartInfinityEngine};
use std::hint::black_box;
use ztrain::{BaselineEngine, MachineConfig};

fn bench_handler_vs_subgroup_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_handler");
    g.sample_size(10);
    let workload = Workload::paper_default(ModelConfig::gpt2_4b());
    for subgroup in [25_000_000usize, 50_000_000, 100_000_000, 200_000_000] {
        for handler in [HandlerMode::Naive, HandlerMode::Optimized] {
            let id = BenchmarkId::new(format!("{handler:?}"), subgroup);
            g.bench_with_input(id, &(subgroup, handler), |b, &(subgroup, handler)| {
                b.iter(|| {
                    let report = SmartInfinityEngine::new(
                        MachineConfig::smart_infinity(10),
                        workload.clone(),
                        OptimizerKind::Adam,
                    )
                    .with_handler(handler)
                    .with_subgroup_elems(subgroup)
                    .simulate_iteration()
                    .expect("simulation");
                    black_box(report.total_s())
                });
            });
        }
    }
    g.finish();
}

fn bench_selection_strategies(c: &mut Criterion) {
    use gradcomp::Compressor;
    use tensorlib::FlatTensor;
    let mut g = c.benchmark_group("ablation_selection");
    let grads = FlatTensor::randn(1 << 21, 0.01, 9);
    for (name, compressor) in [
        ("exact_topk", Compressor::top_k(0.01)),
        ("threshold_topk", Compressor::threshold_top_k(0.01, 8192)),
        ("random_k", Compressor::random_k(0.01, 7)),
    ] {
        g.bench_function(name, |b| b.iter(|| black_box(compressor.compress(&grads))));
    }
    g.finish();
}

fn bench_partition_granularity(c: &mut Criterion) {
    use optim::Optimizer;
    use smart_infinity::SmartInfinityTrainer;
    use tensorlib::FlatTensor;
    let mut g = c.benchmark_group("ablation_partition");
    g.sample_size(10);
    let n = 300_000;
    let initial = FlatTensor::randn(n, 0.02, 11);
    let grads = FlatTensor::randn(n, 0.01, 12);
    for csds in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("functional_step", csds), &csds, |b, &csds| {
            let mut trainer =
                SmartInfinityTrainer::new(&initial, Optimizer::adam_default(), csds, 40_000)
                    .expect("trainer");
            b.iter(|| trainer.train_step_with_grads(&grads).expect("step"));
        });
    }
    g.finish();
}

fn bench_baseline_block_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_baseline_blocks");
    g.sample_size(10);
    for model in [ModelConfig::gpt2_0_34b(), ModelConfig::gpt2_4b(), ModelConfig::gpt2_16_6b()] {
        let workload = Workload::paper_default(model.clone());
        g.bench_with_input(
            BenchmarkId::new("simulate_iteration", model.name()),
            &workload,
            |b, workload| {
                b.iter(|| {
                    BaselineEngine::new(
                        MachineConfig::baseline_raid0(6),
                        workload.clone(),
                        OptimizerKind::Adam,
                    )
                    .simulate_iteration()
                    .expect("simulation")
                    .total_s()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_handler_vs_subgroup_size,
    bench_selection_strategies,
    bench_partition_granularity,
    bench_baseline_block_streaming
);
criterion_main!(ablations);
