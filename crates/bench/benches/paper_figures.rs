//! Criterion benchmarks: one group per paper table/figure. Each benchmark
//! regenerates the corresponding experiment end to end on the discrete-event
//! platform, so `cargo bench` both times the harness and re-derives every
//! headline number.

use bench::harness;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_motivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("motivation");
    g.sample_size(10);
    g.bench_function("fig03a_baseline_breakdown", |b| b.iter(harness::fig3a));
    g.bench_function("fig03b_raid0_scaling", |b| b.iter(harness::fig3b));
    g.bench_function("tab01_interconnect_traffic", |b| b.iter(harness::tab1));
    g.bench_function("tab03_fpga_resources", |b| b.iter(harness::tab3));
    g.finish();
}

fn bench_speedup_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("speedup");
    g.sample_size(10);
    g.bench_function("fig09_ablation_ladder", |b| b.iter(harness::fig9));
    g.bench_function("fig10_larger_models", |b| b.iter(harness::fig10));
    g.bench_function("fig11a_csd_scaling", |b| b.iter(harness::fig11a));
    g.bench_function("fig11b_breakdown_10ssd", |b| b.iter(harness::fig11b));
    g.bench_function("fig12_other_optimizers", |b| b.iter(harness::fig12));
    g.bench_function("fig13_bloom_vit", |b| b.iter(harness::fig13));
    g.finish();
}

fn bench_analysis_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.bench_function("fig14_kernel_throughput", |b| b.iter(harness::fig14));
    g.bench_function("fig15_cost_efficiency", |b| b.iter(harness::fig15));
    g.bench_function("fig16_compression_sensitivity", |b| b.iter(harness::fig16));
    g.bench_function("fig17_congested_topology", |b| b.iter(harness::fig17));
    g.finish();
}

fn bench_finetuning(c: &mut Criterion) {
    let mut g = c.benchmark_group("finetuning");
    g.sample_size(10);
    // One epoch keeps the real training runs to benchmark-friendly durations;
    // the figures binary uses three epochs for the reported accuracies.
    g.bench_function("tab04_finetune_accuracy_quick", |b| b.iter(|| harness::tab4(1)));
    g.finish();
}

criterion_group!(
    figures,
    bench_motivation,
    bench_speedup_figures,
    bench_analysis_figures,
    bench_finetuning
);
criterion_main!(figures);
